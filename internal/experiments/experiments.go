// Package experiments regenerates every table and figure of the paper's
// evaluation on the simulated TC27x: the latency/stall calibration of
// Table 2, the counter readings of Table 6, and the model-vs-isolation
// predictions of Figure 4. The command-line tools, the benchmark harness
// and the integration tests all call through here so that the numbers
// reported anywhere come from one implementation.
package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dsu"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tricore"
	"repro/internal/workload"
)

// AnalysedCore and ContenderCore are the paper's placement: "Core 1 and
// Core 2 (TC-1.6P) host the application under analysis and a contender
// respectively".
const (
	AnalysedCore  = 1
	ContenderCore = 2
)

// Table2Row is one measured row of Table 2: per-access end-to-end latency
// (maximum and minimum) and minimum stall cycles for one SRI target,
// measured with calibration microbenchmarks in isolation, separately for
// code and data requests.
type Table2Row struct {
	Target platform.Target
	// LCo/LDa are measured worst-case end-to-end latencies per access
	// (prefetch buffers disabled, as after a discontinuity); -1 where
	// the access path does not exist (code on dfl).
	LCo, LDa int64
	// LMinCo/LMinDa are measured best-case latencies per access
	// (sequential stream with the flash prefetch buffers active — the
	// bracketed lmin row of Table 2); -1 where absent.
	LMinCo, LMinDa int64
	// CsCo/CsDa are measured stall cycles per access; -1 where absent.
	CsCo, CsDa int64
}

// CalibrateTable2 reproduces the paper's Table 2 methodology: for every
// (target, op) path, run a microbenchmark with a known number of
// back-to-back SRI accesses in isolation and divide the CCNT and
// PMEM_STALL/DMEM_STALL deltas by the access count. The dispatch cycle
// each access spends in the pipeline before the transaction is issued is
// subtracted from the latency figure. Each path is measured twice: with
// the flash prefetch buffers off (worst case, lmax) and on with a
// sequential stream (best case, lmin).
func CalibrateTable2(lat platform.LatencyTable) ([]Table2Row, error) {
	const n = 1000
	rows := make([]Table2Row, 0, len(platform.Targets))
	for _, tgt := range platform.Targets {
		row := Table2Row{Target: tgt, LCo: -1, LDa: -1, LMinCo: -1, LMinDa: -1, CsCo: -1, CsDa: -1}
		for _, op := range platform.Ops {
			if !platform.CanAccess(tgt, op) {
				continue
			}
			measure := func(prefetch bool) (perAccessLat, perAccessStall int64, err error) {
				src, err := workload.Microbench(workload.MicrobenchConfig{
					Target: tgt, Op: op, N: n, Core: AnalysedCore,
				})
				if err != nil {
					return 0, 0, err
				}
				res, err := sim.RunIsolation(lat, AnalysedCore,
					sim.Task{Kind: tricore.TC16P, Src: src}, sim.Config{FlashPrefetch: prefetch})
				if err != nil {
					return 0, 0, fmt.Errorf("calibrating %s/%s: %w", tgt, op, err)
				}
				r := res.Readings[AnalysedCore]
				stall := r.PS
				if op == platform.Data {
					stall = r.DS
				}
				// One dispatch cycle per access is pipeline time, not
				// transaction latency.
				return r.CCNT/n - 1, stall / n, nil
			}
			lMax, cs, err := measure(false)
			if err != nil {
				return nil, err
			}
			lMin, _, err := measure(true)
			if err != nil {
				return nil, err
			}
			if op == platform.Code {
				row.LCo, row.LMinCo, row.CsCo = lMax, lMin, cs
			} else {
				row.LDa, row.LMinDa, row.CsDa = lMax, lMin, cs
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// AppIterations and the burst sizing below set the scale of the
// evaluation workloads: large enough for steady-state cache behaviour,
// small enough that the whole Figure 4 sweep runs in well under a second.
const AppIterations = 300

// buildApp constructs the analysed application for a scenario.
func buildApp(sc workload.Scenario) (trace.Source, error) {
	return workload.ControlLoop(workload.AppConfig{
		Scenario:   sc,
		Core:       AnalysedCore,
		Iterations: AppIterations,
	})
}

// coreScenario maps the workload scenario tag to the model's tailoring.
func coreScenario(sc workload.Scenario) core.Scenario {
	if sc == workload.Scenario2 {
		return core.Scenario2()
	}
	return core.Scenario1()
}

// Table6Readings reproduces Table 6 for one scenario: the debug-counter
// readings of the analysed application (core 1) and the H-Load contender
// (core 2), each measured in isolation.
func Table6Readings(lat platform.LatencyTable, sc workload.Scenario) (app, contender dsu.Readings, err error) {
	appSrc, err := buildApp(sc)
	if err != nil {
		return dsu.Readings{}, dsu.Readings{}, err
	}
	appRes, err := sim.RunIsolation(lat, AnalysedCore, sim.Task{Kind: tricore.TC16P, Src: appSrc}, sim.Config{})
	if err != nil {
		return dsu.Readings{}, dsu.Readings{}, err
	}
	appR := appRes.Readings[AnalysedCore]

	_, contR, err := sizeContender(lat, sc, workload.HLoad, appR)
	if err != nil {
		return dsu.Readings{}, dsu.Readings{}, err
	}
	return appR, contR, nil
}

// sizeContender builds a contender whose total SRI request count is the
// level's fraction of the application's (over-approximated from its stall
// readings) and measures it in isolation. The contender executes exactly
// this trace in the co-scheduled run, so its isolation readings bound the
// load it injects into the analysis window — the condition under which the
// ILP-PTAC contender constraints (Eq. 22-23) are sound.
func sizeContender(lat platform.LatencyTable, sc workload.Scenario, lv workload.Level, appR dsu.Readings) (trace.Source, dsu.Readings, error) {
	nCo, nDa := core.AccessBounds(appR, &lat)
	target := lv.LoadFraction() * float64(nCo+nDa)
	per := lv.AccessesPerBurst()
	bursts := int(target)/per + 1
	src, err := workload.Contender(workload.ContenderConfig{
		Level: lv, Scenario: sc, Core: ContenderCore, Bursts: bursts,
	})
	if err != nil {
		return nil, dsu.Readings{}, err
	}
	res, err := sim.RunIsolation(lat, ContenderCore, sim.Task{Kind: tricore.TC16P, Src: src}, sim.Config{})
	if err != nil {
		return nil, dsu.Readings{}, err
	}
	src.Reset()
	return src, res.Readings[ContenderCore], nil
}

// Figure4Row is one bar group of Figure 4: for a scenario and contender
// load, the observed behaviour and each model's prediction, all normalised
// to execution time in isolation.
type Figure4Row struct {
	Scenario workload.Scenario
	Level    workload.Level

	// IsolationCycles is the application's observed time in isolation.
	IsolationCycles int64
	// ObservedCycles is its observed time co-running with the contender.
	ObservedCycles int64

	FTC core.Estimate
	ILP core.Estimate

	// TrueContention is the simulator ground truth: arbitration wait
	// cycles the application actually suffered (not observable on real
	// hardware).
	TrueContention int64
}

// ObservedRatio is observed multicore time over isolation time.
func (r Figure4Row) ObservedRatio() float64 {
	return float64(r.ObservedCycles) / float64(r.IsolationCycles)
}

// Figure4 runs the full evaluation sweep: both deployment scenarios
// against all three contender loads.
func Figure4(lat platform.LatencyTable) ([]Figure4Row, error) {
	var rows []Figure4Row
	for _, sc := range []workload.Scenario{workload.Scenario1, workload.Scenario2} {
		for _, lv := range workload.Levels {
			row, err := Figure4Cell(lat, sc, lv)
			if err != nil {
				return nil, fmt.Errorf("experiments: scenario %d %s: %w", sc, lv, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Figure4Cell measures one (scenario, load) cell of Figure 4.
func Figure4Cell(lat platform.LatencyTable, sc workload.Scenario, lv workload.Level) (Figure4Row, error) {
	// Step 1: the application in isolation (the pre-integration
	// measurement an SWP can take).
	appSrc, err := buildApp(sc)
	if err != nil {
		return Figure4Row{}, err
	}
	isoRes, err := sim.RunIsolation(lat, AnalysedCore, sim.Task{Kind: tricore.TC16P, Src: appSrc}, sim.Config{})
	if err != nil {
		return Figure4Row{}, err
	}
	appR := isoRes.Readings[AnalysedCore]

	// Step 2: the contender at this load level, measured in isolation.
	in := core.Input{A: appR, Lat: &lat, Scenario: coreScenario(sc)}
	contSrc, contR, err := sizeContender(lat, sc, lv, appR)
	if err != nil {
		return Figure4Row{}, err
	}
	in.B = []dsu.Readings{contR}

	// Step 3: model bounds, from isolation readings only.

	ilpEst, err := core.ILPPTAC(in, core.PTACOptions{})
	if err != nil {
		return Figure4Row{}, err
	}
	ftcEst, err := core.FTC(in)
	if err != nil {
		return Figure4Row{}, err
	}

	// Step 4: the deployment-time truth the models must upper-bound —
	// both tasks co-running.
	appSrc.Reset()
	multiRes, err := sim.Run(lat, map[int]sim.Task{
		AnalysedCore:  {Kind: tricore.TC16P, Src: appSrc},
		ContenderCore: {Kind: tricore.TC16P, Src: contSrc},
	}, AnalysedCore, sim.Config{})
	if err != nil {
		return Figure4Row{}, err
	}

	return Figure4Row{
		Scenario:        sc,
		Level:           lv,
		IsolationCycles: appR.CCNT,
		ObservedCycles:  multiRes.Cycles,
		FTC:             ftcEst,
		ILP:             ilpEst,
		TrueContention:  multiRes.TotalWait(AnalysedCore),
	}, nil
}

// PaperFigure4 records the published Figure 4 ratios for side-by-side
// comparison in EXPERIMENTS.md: per scenario, the ILP-PTAC prediction
// range across L→H loads and the (load-insensitive) fTC prediction.
type PaperFigure4 struct {
	Scenario        workload.Scenario
	ILPLow, ILPHigh float64
	FTC             float64
}

// PaperFigure4Values are the ranges the paper reports in §4.2.
var PaperFigure4Values = []PaperFigure4{
	{Scenario: workload.Scenario1, ILPLow: 1.24, ILPHigh: 1.49, FTC: 1.95},
	{Scenario: workload.Scenario2, ILPLow: 1.34, ILPHigh: 1.67, FTC: 2.33},
}
