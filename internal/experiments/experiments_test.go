package experiments

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dsu"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/tricore"
	"repro/internal/workload"
)

var lat = platform.TC27xLatencies()

// TestTable2CalibrationMatchesPlatform is the Table 2 reproduction: the
// microbenchmark methodology on the simulator must recover exactly the
// latency and minimum-stall characterisation the platform is built from.
func TestTable2CalibrationMatchesPlatform(t *testing.T) {
	rows, err := CalibrateTable2(lat)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != int(platform.NumTargets) {
		t.Fatalf("%d rows, want %d", len(rows), platform.NumTargets)
	}
	for _, r := range rows {
		for _, op := range platform.Ops {
			measL, measCs := r.LCo, r.CsCo
			if op == platform.Data {
				measL, measCs = r.LDa, r.CsDa
			}
			if !platform.CanAccess(r.Target, op) {
				if measL != -1 || measCs != -1 {
					t.Errorf("%s/%s: illegal path has measurements", r.Target, op)
				}
				continue
			}
			l, err := lat.Lookup(r.Target, op)
			if err != nil {
				t.Fatal(err)
			}
			if measL != l.Max {
				t.Errorf("%s/%s: measured latency %d, Table 2 says %d", r.Target, op, measL, l.Max)
			}
			if measCs != l.Stall {
				t.Errorf("%s/%s: measured stall %d, Table 2 says %d", r.Target, op, measCs, l.Stall)
			}
			measMin := r.LMinCo
			if op == platform.Data {
				measMin = r.LMinDa
			}
			if measMin != l.Min {
				t.Errorf("%s/%s: measured min latency %d, Table 2 says %d", r.Target, op, measMin, l.Min)
			}
		}
	}
}

// TestTable6Shape checks the qualitative properties the paper reads off
// Table 6: dirty misses are zero under both scenarios (cacheable data is
// constant data), Scenario 2 shows data-cache misses where Scenario 1 has
// none, and code misses are non-zero in both.
func TestTable6Shape(t *testing.T) {
	for _, sc := range []workload.Scenario{workload.Scenario1, workload.Scenario2} {
		app, cont, err := Table6Readings(lat, sc)
		if err != nil {
			t.Fatalf("scenario %d: %v", sc, err)
		}
		for name, r := range map[string]dsu.Readings{"app": app, "contender": cont} {
			if err := r.Validate(); err != nil {
				t.Errorf("scenario %d %s: %v", sc, name, err)
			}
			if r.DMD != 0 {
				t.Errorf("scenario %d %s: DMD = %d, want 0 (cacheable data is constant)", sc, name, r.DMD)
			}
			if r.PM == 0 || r.PS == 0 || r.DS == 0 {
				t.Errorf("scenario %d %s: degenerate readings %v", sc, name, r)
			}
			if sc == workload.Scenario1 && r.DMC != 0 {
				t.Errorf("scenario 1 %s: DMC = %d, want 0 (no cacheable data)", name, r.DMC)
			}
			if sc == workload.Scenario2 && r.DMC == 0 {
				t.Errorf("scenario 2 %s: DMC = 0, want cacheable-data misses", name)
			}
		}
	}
}

// TestFigure4Soundness is the paper's headline soundness claim: "In all
// experiments our model predictions upperbound the observed multicore
// execution time."
func TestFigure4Soundness(t *testing.T) {
	rows, err := Figure4(lat)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6 (2 scenarios x 3 loads)", len(rows))
	}
	for _, r := range rows {
		if r.ObservedCycles < r.IsolationCycles {
			t.Errorf("Sc%d %s: contended run faster than isolation", r.Scenario, r.Level)
		}
		if r.ILP.WCET() < r.ObservedCycles {
			t.Errorf("Sc%d %s: ILP-PTAC WCET %d below observed %d", r.Scenario, r.Level, r.ILP.WCET(), r.ObservedCycles)
		}
		if r.FTC.WCET() < r.ObservedCycles {
			t.Errorf("Sc%d %s: fTC WCET %d below observed %d", r.Scenario, r.Level, r.FTC.WCET(), r.ObservedCycles)
		}
		// The observed slowdown is exactly the arbitration wait; the
		// contention bounds must cover it.
		if got := r.ObservedCycles - r.IsolationCycles; got != r.TrueContention {
			t.Errorf("Sc%d %s: slowdown %d != true wait %d", r.Scenario, r.Level, got, r.TrueContention)
		}
		if r.ILP.ContentionCycles < r.TrueContention {
			t.Errorf("Sc%d %s: ILP contention bound %d below truth %d", r.Scenario, r.Level, r.ILP.ContentionCycles, r.TrueContention)
		}
	}
}

// TestFigure4Tightness checks the comparative claims of §4.2: the ILP
// bound is tighter than fTC everywhere (its contention below half of
// fTC's), it adapts to contender load monotonically, and fTC is load-
// insensitive.
func TestFigure4Tightness(t *testing.T) {
	rows, err := Figure4(lat)
	if err != nil {
		t.Fatal(err)
	}
	byScenario := map[workload.Scenario][]Figure4Row{}
	for _, r := range rows {
		byScenario[r.Scenario] = append(byScenario[r.Scenario], r)
	}
	for sc, rs := range byScenario {
		if len(rs) != 3 {
			t.Fatalf("scenario %d has %d rows", sc, len(rs))
		}
		// Levels come in H, M, L order.
		h, m, l := rs[0], rs[1], rs[2]
		for _, r := range rs {
			if 2*r.ILP.ContentionCycles >= r.FTC.ContentionCycles {
				t.Errorf("Sc%d %s: ILP contention %d not below half of fTC %d",
					sc, r.Level, r.ILP.ContentionCycles, r.FTC.ContentionCycles)
			}
		}
		if !(h.ILP.ContentionCycles > m.ILP.ContentionCycles && m.ILP.ContentionCycles > l.ILP.ContentionCycles) {
			t.Errorf("Sc%d: ILP bound not monotone in load: H=%d M=%d L=%d",
				sc, h.ILP.ContentionCycles, m.ILP.ContentionCycles, l.ILP.ContentionCycles)
		}
		if h.FTC.ContentionCycles != m.FTC.ContentionCycles || m.FTC.ContentionCycles != l.FTC.ContentionCycles {
			t.Errorf("Sc%d: fTC bound varies with load: %d/%d/%d",
				sc, h.FTC.ContentionCycles, m.FTC.ContentionCycles, l.FTC.ContentionCycles)
		}
	}
}

// TestFigure4MatchesPaperShape compares the measured ratios against the
// published ranges: each reproduced value must land within a modest
// tolerance of the paper's (the substrate is a simulator, not the authors'
// silicon, so shapes — not exact numbers — are the bar; see EXPERIMENTS.md).
func TestFigure4MatchesPaperShape(t *testing.T) {
	rows, err := Figure4(lat)
	if err != nil {
		t.Fatal(err)
	}
	const tolerance = 0.15 // relative
	within := func(got, want float64) bool {
		d := got - want
		if d < 0 {
			d = -d
		}
		return d/want <= tolerance
	}
	for _, ref := range PaperFigure4Values {
		var h, l, ftc float64
		for _, r := range rows {
			if r.Scenario != ref.Scenario {
				continue
			}
			ftc = r.FTC.Ratio()
			switch r.Level {
			case workload.HLoad:
				h = r.ILP.Ratio()
			case workload.LLoad:
				l = r.ILP.Ratio()
			}
		}
		if !within(h, ref.ILPHigh) {
			t.Errorf("Sc%d: ILP high %0.2f vs paper %0.2f beyond tolerance", ref.Scenario, h, ref.ILPHigh)
		}
		if !within(l, ref.ILPLow) {
			t.Errorf("Sc%d: ILP low %0.2f vs paper %0.2f beyond tolerance", ref.Scenario, l, ref.ILPLow)
		}
		if !within(ftc, ref.FTC) {
			t.Errorf("Sc%d: fTC %0.2f vs paper %0.2f beyond tolerance", ref.Scenario, ftc, ref.FTC)
		}
	}
}

// TestIdealOracleBracketsModels: with the simulator's ground-truth PTACs,
// the ideal model (Eq. 1) must cover the true contention while staying at
// or below the DSU-driven ILP bound — the information gap the paper
// quantifies.
func TestIdealOracleBracketsModels(t *testing.T) {
	for _, sc := range []workload.Scenario{workload.Scenario1, workload.Scenario2} {
		appSrc, err := workload.ControlLoop(workload.AppConfig{Scenario: sc, Core: AnalysedCore, Iterations: AppIterations})
		if err != nil {
			t.Fatal(err)
		}
		isoRes, err := sim.RunIsolation(lat, AnalysedCore, sim.Task{Kind: tricore.TC16P, Src: appSrc}, sim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		appR := isoRes.Readings[AnalysedCore]
		contSrc, contR, err := sizeContender(lat, sc, workload.HLoad, appR)
		if err != nil {
			t.Fatal(err)
		}

		appSrc.Reset()
		multi, err := sim.Run(lat, map[int]sim.Task{
			AnalysedCore:  {Kind: tricore.TC16P, Src: appSrc},
			ContenderCore: {Kind: tricore.TC16P, Src: contSrc},
		}, AnalysedCore, sim.Config{})
		if err != nil {
			t.Fatal(err)
		}

		// Ground-truth PTACs of both tasks as they ran together.
		ideal := core.Ideal(multi.PTAC[AnalysedCore], multi.PTAC[ContenderCore], &lat)
		truth := multi.TotalWait(AnalysedCore)
		if ideal < truth {
			t.Errorf("scenario %d: Ideal %d below true contention %d", sc, ideal, truth)
		}

		ilpEst, err := core.ILPPTAC(core.Input{
			A: appR, B: []dsu.Readings{contR}, Lat: &lat, Scenario: coreScenario(sc),
		}, core.PTACOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if ilpEst.ContentionCycles < ideal {
			t.Errorf("scenario %d: ILP bound %d below ideal-with-full-information %d", sc, ilpEst.ContentionCycles, ideal)
		}
	}
}

func TestPaperReferenceValues(t *testing.T) {
	if len(PaperFigure4Values) != 2 {
		t.Fatal("expected two scenario references")
	}
	for _, ref := range PaperFigure4Values {
		if !(1 < ref.ILPLow && ref.ILPLow < ref.ILPHigh && ref.ILPHigh < ref.FTC) {
			t.Errorf("reference ordering broken: %+v", ref)
		}
	}
}

func TestCoreScenarioMapping(t *testing.T) {
	if coreScenario(workload.Scenario1).Name != "scenario1" {
		t.Error("scenario 1 mapping")
	}
	if coreScenario(workload.Scenario2).Name != "scenario2" {
		t.Error("scenario 2 mapping")
	}
	if !coreScenario(workload.Scenario2).CacheableDataFloor {
		t.Error("scenario 2 must carry the data floor")
	}
}

func TestEstimateModelsSeparate(t *testing.T) {
	rows, err := Figure4(lat)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.FTC.Model != "fTC" || r.ILP.Model != "ILP-PTAC" {
			t.Errorf("model labels: %q, %q", r.FTC.Model, r.ILP.Model)
		}
		if r.ILP.IsolationCycles != r.IsolationCycles {
			t.Errorf("isolation cycles disagree: %d vs %d", r.ILP.IsolationCycles, r.IsolationCycles)
		}
	}
}
