package experiments

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/campaign"
	"repro/internal/workload"
)

// grid2x3x2 is a multi-dimensional grid exercising every sweep dimension:
// both scenarios, all three loads, base table plus a 25%-slower variant.
var grid2x3x2 = Grid{
	AppIterations: 100,
	Perturbations: []Perturbation{{}, ScaleLatencies("slow25", 125, 100)},
}

// TestParallelSweepMatchesSerial is the engine's core guarantee: a
// campaign fanned across 8 workers returns byte-identical results to the
// same campaign on 1 worker.
func TestParallelSweepMatchesSerial(t *testing.T) {
	serial, err := NewRunner(campaign.New(1)).Sweep(context.Background(), lat, grid2x3x2)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewRunner(campaign.New(8)).Sweep(context.Background(), lat, grid2x3x2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("parallel sweep diverges from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

// TestParallelFigure4MatchesSerial extends the determinism guarantee to
// the co-scheduled campaign.
func TestParallelFigure4MatchesSerial(t *testing.T) {
	serial, err := NewRunner(campaign.New(1)).Figure4(context.Background(), lat)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewRunner(campaign.New(8)).Figure4(context.Background(), lat)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("parallel Figure 4 diverges from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

// TestSweepGridShape: the grid enumerates perturbations outermost, then
// scenarios, then levels, and labels each point with its variant.
func TestSweepGridShape(t *testing.T) {
	if got, want := grid2x3x2.Size(), 12; got != want {
		t.Fatalf("grid size %d, want %d", got, want)
	}
	points, err := NewRunner(nil).Sweep(context.Background(), lat, grid2x3x2)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 12 {
		t.Fatalf("%d points, want 12", len(points))
	}
	i := 0
	for _, pname := range []string{"", "slow25"} {
		for _, sc := range []workload.Scenario{workload.Scenario1, workload.Scenario2} {
			for _, lv := range workload.Levels {
				p := points[i]
				if p.Perturbation != pname || p.Scenario != sc || p.Level != lv {
					t.Errorf("point %d = (%q, Sc%d, %s), want (%q, Sc%d, %s)",
						i, p.Perturbation, p.Scenario, p.Level, pname, sc, lv)
				}
				i++
			}
		}
	}
	// The slowed platform must show strictly larger isolation times.
	for i := 0; i < 6; i++ {
		if points[i+6].IsolationCycles <= points[i].IsolationCycles {
			t.Errorf("slow25 cell %d not slower than base: %d vs %d",
				i, points[i+6].IsolationCycles, points[i].IsolationCycles)
		}
	}
}

// TestSweepMemoizesIsolationRuns pins the memoization payoff down to
// exact counts: a 2x3 sweep needs 2 app baselines and 6 contender
// measurements (8 misses); the 4 remaining app requests are cache hits.
func TestSweepMemoizesIsolationRuns(t *testing.T) {
	eng := campaign.New(4)
	if _, err := NewRunner(eng).Sweep(context.Background(), lat, Grid{AppIterations: 100}); err != nil {
		t.Fatal(err)
	}
	s := eng.Stats()
	if s.IsolationMisses != 8 {
		t.Errorf("%d isolation misses, want 8 (2 app + 6 contenders)", s.IsolationMisses)
	}
	if s.IsolationHits != 4 {
		t.Errorf("%d isolation hits, want 4 (2 scenarios x 2 reused app baselines)", s.IsolationHits)
	}

	// A second identical sweep on the same engine is all hits.
	if _, err := NewRunner(eng).Sweep(context.Background(), lat, Grid{AppIterations: 100}); err != nil {
		t.Fatal(err)
	}
	s2 := eng.Stats()
	if s2.IsolationMisses != s.IsolationMisses {
		t.Errorf("second sweep recomputed: %d misses, want %d", s2.IsolationMisses, s.IsolationMisses)
	}
	if want := s.IsolationHits + 12; s2.IsolationHits != want {
		t.Errorf("second sweep hits = %d, want %d", s2.IsolationHits, want)
	}
}

// TestFigure4MemoizesAcrossArtefacts: Figure 4 after a sweep on the same
// engine reuses every isolation baseline and only adds co-scheduled runs.
func TestFigure4MemoizesAcrossArtefacts(t *testing.T) {
	eng := campaign.New(4)
	r := NewRunner(eng)
	if _, err := r.Sweep(context.Background(), lat, Grid{}); err != nil {
		t.Fatal(err)
	}
	after := eng.Stats()
	if _, err := r.Figure4(context.Background(), lat); err != nil {
		t.Fatal(err)
	}
	s := eng.Stats()
	if s.IsolationMisses != after.IsolationMisses {
		t.Errorf("Figure 4 re-simulated %d isolation baselines the sweep already measured",
			s.IsolationMisses-after.IsolationMisses)
	}
	if got, want := s.SimRuns-after.SimRuns, int64(6); got != want {
		t.Errorf("Figure 4 added %d sim runs, want %d (the co-scheduled cells)", got, want)
	}
}

// TestSweepCancellation: a cancelled campaign surfaces the context error
// instead of hanging or fabricating points.
func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := NewRunner(campaign.New(2)).Sweep(ctx, lat, Grid{AppIterations: 100})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestSweepCompatWrapperShape: the historical serial entry point still
// returns the paper's 6-point grid in the historical order.
func TestSweepCompatWrapperShape(t *testing.T) {
	points, err := Sweep(lat, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("%d points, want 6", len(points))
	}
	for _, p := range points {
		if p.Perturbation != "" {
			t.Errorf("wrapper sweep carries perturbation %q", p.Perturbation)
		}
	}
}

// TestScaleLatenciesPreservesValidity: scaled tables must stay usable by
// the simulator and the models.
func TestScaleLatenciesPreservesValidity(t *testing.T) {
	for _, tc := range []struct {
		name     string
		num, den int64
	}{
		{"slow150", 250, 100},
		{"fast", 40, 100},
		{"tiny", 1, 100}, // floors at 1 cycle
	} {
		scaled := ScaleLatencies(tc.name, tc.num, tc.den).Apply(lat)
		if err := scaled.Validate(); err != nil {
			t.Errorf("%s: scaled table invalid: %v", tc.name, err)
		}
	}
	// The identity perturbation leaves the table untouched.
	if got := (Perturbation{}).apply(lat); got != lat {
		t.Error("identity perturbation changed the table")
	}
}
