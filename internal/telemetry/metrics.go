// Package telemetry is the repository's zero-dependency observability
// core: atomic counters, gauges, fixed-bucket latency histograms and
// labeled metric vectors collected in a Registry that exposes itself in
// Prometheus text format, plus lightweight request tracing — a trace ID
// and span tree propagated through context.Context.
//
// The package deliberately imports nothing outside the standard library
// (and nothing from this repository), so every layer — the LP/ILP
// solvers, the SDK analyzer, the campaign engine, the table store, the
// serving layer — can instrument itself without dependency cycles and
// without pulling a metrics client into the module.
//
// Hot-path discipline: a Counter or Gauge update is one atomic add; a
// Histogram observation is two atomic adds plus a branch-free bucket
// search over a small fixed array. Code on a solver hot path should
// accumulate locally and flush once per solve (see internal/ilp), not
// count per pivot.
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative n is a programming error and is ignored so a
// counter can never go backwards (snapshot monotonicity is asserted by
// tests and relied on by dashboards).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (queue depth, in-flight
// requests, connected stream clients).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by n (negative to decrement).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultLatencyBuckets are the histogram upper bounds, in seconds, used
// when a histogram is constructed without explicit buckets: 1µs to 30s in
// roughly 2.5× steps, covering everything from a cache hit (~40ns lands
// in the first bucket) to a timed-out solve.
var DefaultLatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30,
}

// Histogram is a fixed-bucket latency histogram. Buckets are cumulative
// on exposition (Prometheus `le` semantics); quantiles are estimated by
// linear interpolation within the winning bucket.
type Histogram struct {
	bounds []float64 // ascending upper bounds in seconds; +Inf implicit
	counts []atomic.Int64
	count  atomic.Int64
	sumNs  atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.ObserveSeconds(d.Seconds())
}

// ObserveSeconds records one observation given in seconds.
func (h *Histogram) ObserveSeconds(s float64) {
	i := sort.SearchFloat64s(h.bounds, s)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(s * 1e9))
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations in seconds.
func (h *Histogram) Sum() float64 { return float64(h.sumNs.Load()) / 1e9 }

// Quantile estimates the q-quantile (0 < q < 1) in seconds from the
// bucket counts: find the bucket holding the q-th observation and
// interpolate linearly inside it. Returns 0 with no observations. The
// estimate is bucket-resolution-bounded, which is exactly what an ops
// dashboard needs (p50/p95/p99 tiles), not a substitute for a trace.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var seen float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if n == 0 {
			continue
		}
		if seen+n >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if i == len(h.bounds) {
				// Overflow bucket: no finite upper bound to interpolate
				// toward; report its lower edge.
				return lo
			}
			hi := h.bounds[i]
			frac := (rank - seen) / n
			if math.IsNaN(frac) || frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		seen += n
	}
	return h.bounds[len(h.bounds)-1]
}

// cumulative returns the cumulative bucket counts aligned with bounds,
// plus the +Inf total.
func (h *Histogram) cumulative() ([]int64, int64) {
	out := make([]int64, len(h.bounds))
	var acc int64
	for i := range h.bounds {
		acc += h.counts[i].Load()
		out[i] = acc
	}
	return out, acc + h.counts[len(h.bounds)].Load()
}

// CounterVec is a family of counters keyed by one label value — e.g.
// wcetd_requests_total{endpoint="v1_wcet"}. Children are created on
// first use and never removed; With is a read-locked map hit on the
// steady state.
type CounterVec struct {
	label string

	mu    sync.RWMutex
	kids  map[string]*Counter
	order []string
}

func newCounterVec(label string) *CounterVec {
	return &CounterVec{label: label, kids: make(map[string]*Counter)}
}

// With returns the counter for the given label value, creating it on
// first use.
func (v *CounterVec) With(value string) *Counter {
	v.mu.RLock()
	c, ok := v.kids[value]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.kids[value]; ok {
		return c
	}
	c = &Counter{}
	v.kids[value] = c
	v.order = append(v.order, value)
	sort.Strings(v.order)
	return c
}

// values returns the label values in sorted order (stable exposition).
func (v *CounterVec) values() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return append([]string(nil), v.order...)
}

// HistogramVec is a family of histograms keyed by one label value — e.g.
// analyzer_solve_seconds{model="ilpPtac"}.
type HistogramVec struct {
	label  string
	bounds []float64

	mu    sync.RWMutex
	kids  map[string]*Histogram
	order []string
}

func newHistogramVec(label string, bounds []float64) *HistogramVec {
	return &HistogramVec{label: label, bounds: bounds, kids: make(map[string]*Histogram)}
}

// With returns the histogram for the given label value, creating it on
// first use.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.RLock()
	h, ok := v.kids[value]
	v.mu.RUnlock()
	if ok {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok := v.kids[value]; ok {
		return h
	}
	h = newHistogram(v.bounds)
	v.kids[value] = h
	v.order = append(v.order, value)
	sort.Strings(v.order)
	return h
}

func (v *HistogramVec) values() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return append([]string(nil), v.order...)
}
