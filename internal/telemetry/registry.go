package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// kind discriminates what a registered metric holds.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
	kindCounterVec
	kindHistogramVec
	kindInfo
)

func (k kind) String() string {
	switch k {
	case kindCounter, kindCounterVec:
		return "counter"
	case kindGauge, kindGaugeFunc, kindInfo:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is one registered series family.
type metric struct {
	name string
	help string
	kind kind

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
	cvec    *CounterVec
	hvec    *HistogramVec
	// info holds the pre-rendered label pairs of an info gauge
	// (constant 1 with identity labels, e.g. wcetd_build_info).
	info string
}

// Registry holds an ordered set of metrics and renders them. Metric
// names must be unique within a registry; registering a duplicate
// panics (metric registration happens at package init or construction
// time, so a collision is a programming error, not a runtime
// condition).
//
// Construct with NewRegistry, or use the process-wide Default registry,
// where the solver, analyzer, campaign and table-store layers register
// their package-level metrics.
type Registry struct {
	mu    sync.Mutex
	ms    []*metric
	names map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

// defaultRegistry is the process-wide registry package-level metrics
// (solver, analyzer, campaign, tabstore, calib) register into.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

func (r *Registry) register(m *metric) {
	if !validName(m.name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", m.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[m.name] {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", m.name))
	}
	r.names[m.name] = true
	r.ms = append(r.ms, m)
}

// validName enforces the Prometheus metric-name charset (we additionally
// require lowercase-first, which every metric here follows anyway).
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		case c >= 'A' && c <= 'Z':
		default:
			return false
		}
	}
	return true
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, kind: kindGauge, gauge: g})
	return g
}

// GaugeFunc registers a gauge whose value is sampled from fn at
// exposition time — for values another data structure already tracks
// (cache entry counts, engine pool width).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: kindGaugeFunc, fn: fn})
}

// Histogram registers and returns a new histogram; nil bounds select
// DefaultLatencyBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(bounds)
	r.register(&metric{name: name, help: help, kind: kindHistogram, hist: h})
	return h
}

// CounterVec registers and returns a labeled counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	v := newCounterVec(label)
	r.register(&metric{name: name, help: help, kind: kindCounterVec, cvec: v})
	return v
}

// HistogramVec registers and returns a labeled histogram family; nil
// bounds select DefaultLatencyBuckets.
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	v := newHistogramVec(label, bounds)
	r.register(&metric{name: name, help: help, kind: kindHistogramVec, hvec: v})
	return v
}

// Info registers an info-style gauge: a constant 1 whose labels carry
// identity (build version, go version, vcs revision). Labels render in
// sorted key order, deterministically.
func (r *Registry) Info(name, help string, labels map[string]string) {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%q", k, labels[k]))
	}
	r.register(&metric{name: name, help: help, kind: kindInfo, info: strings.Join(parts, ",")})
}

// snapshotMetrics returns the registered metrics under the lock, for
// iteration without holding it (the slice only ever grows).
func (r *Registry) snapshotMetrics() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*metric(nil), r.ms...)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (text/plain; version=0.0.4): HELP and TYPE lines per family,
// one sample line per series, histogram families as cumulative _bucket
// series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, m := range r.snapshotMetrics() {
		fmt.Fprintf(bw, "# HELP %s %s\n", m.name, strings.ReplaceAll(m.help, "\n", " "))
		fmt.Fprintf(bw, "# TYPE %s %s\n", m.name, m.kind)
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(bw, "%s %d\n", m.name, m.counter.Value())
		case kindGauge:
			fmt.Fprintf(bw, "%s %d\n", m.name, m.gauge.Value())
		case kindGaugeFunc:
			fmt.Fprintf(bw, "%s %s\n", m.name, formatFloat(m.fn()))
		case kindHistogram:
			writeHistogram(bw, m.name, "", m.hist)
		case kindCounterVec:
			for _, lv := range m.cvec.values() {
				fmt.Fprintf(bw, "%s{%s=%q} %d\n", m.name, m.cvec.label, lv, m.cvec.With(lv).Value())
			}
		case kindHistogramVec:
			for _, lv := range m.hvec.values() {
				writeHistogram(bw, m.name, fmt.Sprintf("%s=%q", m.hvec.label, lv), m.hvec.With(lv))
			}
		case kindInfo:
			fmt.Fprintf(bw, "%s{%s} 1\n", m.name, m.info)
		}
	}
	return bw.Flush()
}

func writeHistogram(w io.Writer, name, labels string, h *Histogram) {
	cum, total := h.cumulative()
	lePrefix := labels // inside {...}, before the le label
	if lePrefix != "" {
		lePrefix += ","
	}
	for i, b := range h.bounds {
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, lePrefix, formatFloat(b), cum[i])
	}
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, lePrefix, total)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(h.Sum()))
		fmt.Fprintf(w, "%s_count %d\n", name, total)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %s\n", name, labels, formatFloat(h.Sum()))
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, total)
	}
}

// Snapshot flattens the registry into a name → value map for the SSE
// stream and the dashboard: plain series under their name, labeled
// series as name{label="value"}, histograms as name_count, name_sum and
// estimated name_p50/name_p95/name_p99 (seconds).
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	for _, m := range r.snapshotMetrics() {
		switch m.kind {
		case kindCounter:
			out[m.name] = float64(m.counter.Value())
		case kindGauge:
			out[m.name] = float64(m.gauge.Value())
		case kindGaugeFunc:
			out[m.name] = m.fn()
		case kindHistogram:
			snapshotHistogram(out, m.name, m.hist)
		case kindCounterVec:
			for _, lv := range m.cvec.values() {
				out[fmt.Sprintf("%s{%s=%q}", m.name, m.cvec.label, lv)] = float64(m.cvec.With(lv).Value())
			}
		case kindHistogramVec:
			for _, lv := range m.hvec.values() {
				snapshotHistogram(out, fmt.Sprintf("%s{%s=%q}", m.name, m.hvec.label, lv), m.hvec.With(lv))
			}
		case kindInfo:
			out[fmt.Sprintf("%s{%s}", m.name, m.info)] = 1
		}
	}
	return out
}

func snapshotHistogram(out map[string]float64, name string, h *Histogram) {
	out[name+"_count"] = float64(h.Count())
	out[name+"_sum"] = h.Sum()
	out[name+"_p50"] = h.Quantile(0.50)
	out[name+"_p95"] = h.Quantile(0.95)
	out[name+"_p99"] = h.Quantile(0.99)
}

// SnapshotKeys returns Snapshot's keys in sorted order (deterministic
// rendering for tests).
func SnapshotKeys(snap map[string]float64) []string {
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Handler serves the given registries concatenated in Prometheus text
// format — the GET /metrics endpoint. Registries render in argument
// order; names must not collide across them (the serving layer keeps
// its per-server metrics in an own registry beside the process-wide
// Default one).
func Handler(regs ...*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for _, r := range regs {
			if err := r.WritePrometheus(w); err != nil {
				return
			}
		}
	})
}
