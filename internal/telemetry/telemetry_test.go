package telemetry

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterNeverDecreases(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored
	if got := c.Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("Value = %d, want 4", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram([]float64{0.1, 0.2, 0.4, 0.8})
	// 100 observations uniformly in (0, 0.1]: all land in the first bucket.
	for i := 1; i <= 100; i++ {
		h.ObserveSeconds(float64(i) / 1000)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("Count = %d, want 100", got)
	}
	// p50 interpolates to about the middle of the first bucket.
	if p50 := h.Quantile(0.5); p50 < 0.04 || p50 > 0.06 {
		t.Fatalf("p50 = %v, want ~0.05", p50)
	}
	// Push one large observation into the overflow bucket; p100-ish
	// quantiles report the last finite bound (the overflow lower edge).
	h.ObserveSeconds(10)
	if q := h.Quantile(0.999); q != 0.8 {
		t.Fatalf("overflow quantile = %v, want 0.8", q)
	}
	if h.Sum() < 10 {
		t.Fatalf("Sum = %v, want >= 10", h.Sum())
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := newHistogram(nil)
	if q := h.Quantile(0.99); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
}

func TestRegistryPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Requests handled.")
	c.Add(3)
	g := r.Gauge("test_in_flight", "In-flight requests.")
	g.Set(2)
	r.GaugeFunc("test_entries", "Entries.", func() float64 { return 1.5 })
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1})
	h.ObserveSeconds(0.05)
	h.ObserveSeconds(0.5)
	h.ObserveSeconds(5)
	v := r.CounterVec("test_by_endpoint_total", "Per endpoint.", "endpoint")
	v.With("b").Inc()
	v.With("a").Add(2)
	hv := r.HistogramVec("test_solve_seconds", "Per model.", "model", []float64{1})
	hv.With("m").ObserveSeconds(0.5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP test_requests_total Requests handled.\n",
		"# TYPE test_requests_total counter\n",
		"test_requests_total 3\n",
		"# TYPE test_in_flight gauge\n",
		"test_in_flight 2\n",
		"test_entries 1.5\n",
		"# TYPE test_latency_seconds histogram\n",
		`test_latency_seconds_bucket{le="0.1"} 1` + "\n",
		`test_latency_seconds_bucket{le="1"} 2` + "\n",
		`test_latency_seconds_bucket{le="+Inf"} 3` + "\n",
		"test_latency_seconds_count 3\n",
		`test_by_endpoint_total{endpoint="a"} 2` + "\n",
		`test_by_endpoint_total{endpoint="b"} 1` + "\n",
		`test_solve_seconds_bucket{model="m",le="1"} 1` + "\n",
		`test_solve_seconds_count{model="m"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n--- got ---\n%s", want, out)
		}
	}
	// Label values sorted: a before b.
	if strings.Index(out, `endpoint="a"`) > strings.Index(out, `endpoint="b"`) {
		t.Errorf("label values not sorted:\n%s", out)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "y")
}

func TestRegistryInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid name did not panic")
		}
	}()
	r.Counter("bad name", "x")
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("snap_total", "x").Add(2)
	r.Histogram("snap_seconds", "x", []float64{1, 2}).ObserveSeconds(1.5)
	r.CounterVec("snap_vec_total", "x", "k").With("v").Inc()
	snap := r.Snapshot()
	if snap["snap_total"] != 2 {
		t.Errorf("snap_total = %v", snap["snap_total"])
	}
	if snap["snap_seconds_count"] != 1 {
		t.Errorf("snap_seconds_count = %v", snap["snap_seconds_count"])
	}
	if snap[`snap_vec_total{k="v"}`] != 1 {
		t.Errorf(`snap_vec_total{k="v"} = %v`, snap[`snap_vec_total{k="v"}`])
	}
	keys := SnapshotKeys(snap)
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("SnapshotKeys not sorted: %v", keys)
		}
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("handler_total", "x").Inc()
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("status = %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := res.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if !strings.Contains(sb.String(), "handler_total 1") {
		t.Fatalf("body missing series:\n%s", sb.String())
	}

	post, err := srv.Client().Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != 405 {
		t.Fatalf("POST status = %d, want 405", post.StatusCode)
	}
}

func TestTraceSpanTree(t *testing.T) {
	ctx, tr := NewTrace(context.Background(), "request")
	if len(tr.ID) != 16 {
		t.Fatalf("trace ID %q, want 16 hex chars", tr.ID)
	}
	root := FromContext(ctx)
	if root == nil {
		t.Fatal("FromContext returned nil inside a trace")
	}
	cctx, solve := StartSpan(ctx, "solve")
	solve.SetAttr("nodes", 7)
	_, inner := StartSpan(cctx, "pivot")
	inner.End()
	solve.End()
	out := tr.Finish()
	if out.Root.Name != "request" || len(out.Root.Spans) != 1 {
		t.Fatalf("unexpected tree: %+v", out.Root)
	}
	s := out.Root.Spans[0]
	if s.Name != "solve" || s.Attrs["nodes"] != 7 {
		t.Fatalf("solve span: %+v", s)
	}
	if len(s.Spans) != 1 || s.Spans[0].Name != "pivot" {
		t.Fatalf("nested span: %+v", s.Spans)
	}
	if _, err := json.Marshal(out); err != nil {
		t.Fatalf("trace not marshalable: %v", err)
	}
}

func TestSpanNilSafe(t *testing.T) {
	ctx, span := StartSpan(context.Background(), "orphan")
	if span != nil {
		t.Fatal("StartSpan without a trace should return nil span")
	}
	if Active(ctx) {
		t.Fatal("ctx should not be active")
	}
	span.SetAttr("k", "v") // must not panic
	span.End()             // must not panic
}

func TestTraceConcurrentChildren(t *testing.T) {
	ctx, tr := NewTrace(context.Background(), "fanout")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, s := StartSpan(ctx, "model")
			s.SetAttr("w", 1)
			s.End()
		}()
	}
	wg.Wait()
	out := tr.Finish()
	if len(out.Root.Spans) != 16 {
		t.Fatalf("children = %d, want 16", len(out.Root.Spans))
	}
}

func TestUnendedSpanInheritsParentEnd(t *testing.T) {
	ctx, tr := NewTrace(context.Background(), "r")
	_, s := StartSpan(ctx, "leaked")
	_ = s // never ended
	time.Sleep(2 * time.Millisecond)
	out := tr.Finish()
	leaked := out.Root.Spans[0]
	if leaked.DurationUs <= 0 {
		t.Fatalf("unended span duration = %d, want > 0", leaked.DurationUs)
	}
	if leaked.DurationUs > out.Root.DurationUs {
		t.Fatalf("child duration %d exceeds root %d", leaked.DurationUs, out.Root.DurationUs)
	}
}
