package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// Request tracing: a Trace is a per-request span tree propagated through
// context.Context. The serving layer opens a trace per request; each
// layer it crosses (admission, validation, cache lookup, per-model
// solve, RTA) opens a child span under whatever span the context
// currently carries, annotates it with attributes (cache hit, branch &
// bound node count, warm-start count) and ends it. The finished tree is
// returned inline to clients that ask for it (X-Wcet-Trace: 1) and
// logged for slow requests.
//
// Everything is nil-safe: StartSpan on a context with no active trace
// returns a nil *Span whose methods are no-ops, so instrumented code
// needs no "is tracing on" branches beyond the one context lookup.

// spanKey carries the current span through a context.
type spanKey struct{}

// Span is one timed operation in a trace. Spans are safe for concurrent
// use: parallel model evaluations append children to the same parent.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	end      time.Time
	attrs    []attr
	children []*Span
}

type attr struct {
	key string
	val any
}

// Trace is a whole request's span tree plus its wire identity.
type Trace struct {
	// ID is the request's trace identifier (16 hex chars), also returned
	// in the X-Wcet-Trace-Id response header and carried by slow-request
	// log lines.
	ID   string
	root *Span
}

// newID returns a 64-bit random hex trace ID.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; a zero ID
		// keeps tracing non-fatal here.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// NewTrace opens a trace whose root span has the given name and returns
// a context carrying it. The caller owns the root: call Finish (or the
// root's End) when the request completes.
func NewTrace(ctx context.Context, name string) (context.Context, *Trace) {
	root := &Span{name: name, start: time.Now()}
	t := &Trace{ID: newID(), root: root}
	return context.WithValue(ctx, spanKey{}, root), t
}

// FromContext returns the context's current span, or nil when no trace
// is active.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// Active reports whether ctx carries a live trace.
func Active(ctx context.Context) bool { return FromContext(ctx) != nil }

// StartSpan opens a child span under the context's current span and
// returns a context carrying the child. With no active trace it returns
// ctx unchanged and a nil span (whose methods are no-ops).
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := &Span{name: name, start: time.Now()}
	parent.mu.Lock()
	parent.children = append(parent.children, child)
	parent.mu.Unlock()
	return context.WithValue(ctx, spanKey{}, child), child
}

// SetAttr attaches a key/value attribute to the span. Values should be
// JSON-marshalable scalars (ints, strings, bools).
func (s *Span) SetAttr(key string, val any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attr{key: key, val: val})
	s.mu.Unlock()
}

// End closes the span. Ending twice keeps the first end time; an
// unended span inherits its parent's end on rendering.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// Finish ends the root span and renders the trace for the wire.
func (t *Trace) Finish() *TraceJSON {
	t.root.End()
	root := t.root.render(t.root.start, t.root.end)
	return &TraceJSON{
		ID:         t.ID,
		DurationUs: root.DurationUs,
		Root:       root,
	}
}

// TraceJSON is the wire form of a finished trace: what a request with
// X-Wcet-Trace: 1 gets back beside its response.
type TraceJSON struct {
	ID         string    `json:"id"`
	DurationUs int64     `json:"durationUs"`
	Root       *SpanJSON `json:"root"`
}

// SpanJSON is one span in wire form. StartUs is the offset from the
// trace's start, so a client can reconstruct the timeline without
// absolute clocks.
type SpanJSON struct {
	Name       string         `json:"name"`
	StartUs    int64          `json:"startUs"`
	DurationUs int64          `json:"durationUs"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Spans      []*SpanJSON    `json:"spans,omitempty"`
}

// render converts the span subtree to wire form. traceStart anchors
// offsets; parentEnd substitutes for spans never explicitly ended.
func (s *Span) render(traceStart, parentEnd time.Time) *SpanJSON {
	s.mu.Lock()
	end := s.end
	attrs := append([]attr(nil), s.attrs...)
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	if end.IsZero() {
		end = parentEnd
	}
	out := &SpanJSON{
		Name:       s.name,
		StartUs:    s.start.Sub(traceStart).Microseconds(),
		DurationUs: end.Sub(s.start).Microseconds(),
	}
	if len(attrs) > 0 {
		out.Attrs = make(map[string]any, len(attrs))
		for _, a := range attrs {
			out.Attrs[a.key] = a.val
		}
	}
	for _, c := range children {
		out.Spans = append(out.Spans, c.render(traceStart, end))
	}
	return out
}
