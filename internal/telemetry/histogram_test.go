package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestHistogramQuantileEmpty(t *testing.T) {
	h := newHistogram(nil)
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%g) = %g, want 0", q, got)
		}
	}
	if h.Count() != 0 || h.Sum() != 0 {
		t.Errorf("empty Count/Sum = %d/%g", h.Count(), h.Sum())
	}
}

func TestHistogramQuantileSingleSample(t *testing.T) {
	h := newHistogram([]float64{0.1, 1, 10})
	h.ObserveSeconds(0.5)
	for _, q := range []float64{0.01, 0.5, 0.99} {
		got := h.Quantile(q)
		// A single sample lands in (0.1, 1]; every quantile must resolve
		// inside that bucket.
		if got < 0.1 || got > 1 {
			t.Errorf("Quantile(%g) = %g, want within (0.1, 1]", q, got)
		}
	}
}

func TestHistogramQuantileAllOverflow(t *testing.T) {
	h := newHistogram([]float64{0.001, 0.01})
	for i := 0; i < 5; i++ {
		h.ObserveSeconds(100) // beyond every bound
	}
	// The overflow bucket has no finite upper edge; the estimate reports
	// its lower edge rather than inventing a value.
	for _, q := range []float64{0.5, 0.99} {
		if got := h.Quantile(q); got != 0.01 {
			t.Errorf("Quantile(%g) = %g, want 0.01 (overflow lower edge)", q, got)
		}
	}
}

func TestHistogramQuantileBracketsSamples(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 3, 6, 7} {
		h.ObserveSeconds(v)
	}
	p50 := h.Quantile(0.5)
	if p50 <= 0 || p50 > 4 {
		t.Errorf("p50 = %g, want in (0, 4]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 4 || p99 > 8 {
		t.Errorf("p99 = %g, want in [4, 8]", p99)
	}
	if p99 < p50 {
		t.Errorf("p99 %g < p50 %g", p99, p50)
	}
}

// TestHistogramConcurrentObserveSnapshot races observers against quantile
// and exposition readers; run under -race this is the data-race check,
// and in any mode the invariants (monotone count, sane quantile) hold.
func TestHistogramConcurrentObserveSnapshot(t *testing.T) {
	h := newHistogram(nil)
	const writers = 4
	const perWriter = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.ObserveSeconds(float64(seed*i%37) * 1e-4)
			}
		}(w + 1)
	}
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := h.Quantile(0.95)
				if q < 0 {
					t.Error("negative quantile")
					return
				}
				cum, total := h.cumulative()
				for i := 1; i < len(cum); i++ {
					if cum[i] < cum[i-1] {
						t.Error("cumulative counts not monotone")
						return
					}
				}
				if total < 0 {
					t.Error("negative total")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if got := h.Count(); got != writers*perWriter {
		t.Fatalf("Count = %d, want %d", got, writers*perWriter)
	}
}

func TestRegistryInfoMetric(t *testing.T) {
	r := NewRegistry()
	r.Info("wcetd_build_info", "Build identity.", map[string]string{
		"version": "v1.2.3", "go": "go1.22", "revision": "abc123",
	})
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	want := `wcetd_build_info{go="go1.22",revision="abc123",version="v1.2.3"} 1`
	if !strings.Contains(out, want) {
		t.Fatalf("exposition missing %q:\n%s", want, out)
	}
	if !strings.Contains(out, "# TYPE wcetd_build_info gauge") {
		t.Fatalf("info metric not typed gauge:\n%s", out)
	}
	snap := r.Snapshot()
	if v := snap[`wcetd_build_info{go="go1.22",revision="abc123",version="v1.2.3"}`]; v != 1 {
		t.Fatalf("snapshot value = %g, want 1 (snap: %v)", v, snap)
	}
}
