package rta_test

import (
	"fmt"

	"repro/internal/rta"
)

// ExampleAnalyze runs the classic three-task response-time analysis.
func ExampleAnalyze() {
	tasks := []rta.Task{
		{Name: "sensor", WCET: 3, Period: 7, Priority: 1},
		{Name: "control", WCET: 3, Period: 12, Priority: 2},
		{Name: "logger", WCET: 5, Period: 20, Priority: 3},
	}
	results, err := rta.Analyze(tasks)
	if err != nil {
		panic(err)
	}
	for _, r := range results {
		fmt.Printf("%s: response %d, schedulable %v\n", r.Task, r.Response, r.Schedulable)
	}
	// Output:
	// sensor: response 3, schedulable true
	// control: response 6, schedulable true
	// logger: response 20, schedulable true
}

// ExampleUtilization computes the processor demand of a task set.
func ExampleUtilization() {
	fmt.Printf("%.2f\n", rta.Utilization([]rta.Task{
		{Name: "a", WCET: 1, Period: 4},
		{Name: "b", WCET: 1, Period: 2},
	}))
	// Output: 0.75
}
