// Package rta implements fixed-priority preemptive response-time analysis
// for the integration step the paper's introduction motivates: an OEM
// assigns time budgets, software providers deliver tasks with
// contention-aware WCET estimates (from internal/core), and schedulability
// on each core must be verifiable before the system is assembled.
//
// The analysis is the classic recurrence
//
//	R_i = C_i + Σ_{j ∈ hp(i)} ceil(R_i / T_j) · C_j
//
// iterated to a fixed point, with C_i the contention-aware WCET. Using the
// fTC bound for C_i yields verdicts valid under any co-runner schedule;
// using the ILP-PTAC bound yields tighter verdicts valid for the analysed
// contender set — the trade-off the paper's models span.
package rta

import (
	"errors"
	"fmt"
	"sort"
)

// Task is one periodic task on a core, with an implicit or explicit
// deadline.
type Task struct {
	// Name identifies the task in results.
	Name string
	// WCET is the contention-aware worst-case execution time in cycles.
	WCET int64
	// Period is the activation period in cycles.
	Period int64
	// Deadline is the relative deadline; 0 means deadline = period.
	Deadline int64
	// Priority orders preemption: numerically lower value = higher
	// priority. Ties are broken by declaration order.
	Priority int
}

// deadline returns the effective relative deadline.
func (t Task) deadline() int64 {
	if t.Deadline > 0 {
		return t.Deadline
	}
	return t.Period
}

// Validate rejects nonsensical tasks.
func (t Task) Validate() error {
	switch {
	case t.Name == "":
		return errors.New("rta: task with empty name")
	case t.WCET <= 0:
		return fmt.Errorf("rta: task %s has non-positive WCET %d", t.Name, t.WCET)
	case t.Period <= 0:
		return fmt.Errorf("rta: task %s has non-positive period %d", t.Name, t.Period)
	case t.Deadline < 0:
		return fmt.Errorf("rta: task %s has negative deadline %d", t.Name, t.Deadline)
	case t.deadline() < t.WCET:
		return fmt.Errorf("rta: task %s cannot meet deadline %d with WCET %d even alone", t.Name, t.deadline(), t.WCET)
	}
	return nil
}

// Result is one task's analysis outcome.
type Result struct {
	Task string
	// Response is the worst-case response time; valid only when
	// Schedulable (the recurrence diverges past the deadline otherwise
	// and iteration stops there).
	Response int64
	// Schedulable reports whether Response <= deadline.
	Schedulable bool
}

// Utilization returns Σ C_i / T_i.
func Utilization(tasks []Task) float64 {
	var u float64
	for _, t := range tasks {
		u += float64(t.WCET) / float64(t.Period)
	}
	return u
}

// Analyze computes worst-case response times for every task under
// fixed-priority preemptive scheduling on one core. Tasks may be given in
// any order. The task set as a whole is schedulable iff every Result is.
func Analyze(tasks []Task) ([]Result, error) {
	for _, t := range tasks {
		if err := t.Validate(); err != nil {
			return nil, err
		}
	}
	names := map[string]bool{}
	for _, t := range tasks {
		if names[t.Name] {
			return nil, fmt.Errorf("rta: duplicate task name %q", t.Name)
		}
		names[t.Name] = true
	}

	// Stable priority order: priority value, then declaration order.
	order := make([]int, len(tasks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return tasks[order[a]].Priority < tasks[order[b]].Priority
	})

	results := make([]Result, len(tasks))
	for pos, idx := range order {
		t := tasks[idx]
		hp := order[:pos] // strictly higher priority (stable ties resolved)
		r := t.WCET
		for iter := 0; iter < 1_000_000; iter++ {
			interference := int64(0)
			for _, j := range hp {
				tj := tasks[j]
				interference += ceilDiv(r, tj.Period) * tj.WCET
			}
			next := t.WCET + interference
			if next == r {
				results[idx] = Result{Task: t.Name, Response: r, Schedulable: r <= t.deadline()}
				break
			}
			r = next
			if r > t.deadline() {
				// Recurrence passed the deadline: unschedulable; report
				// the first exceeding value.
				results[idx] = Result{Task: t.Name, Response: r, Schedulable: false}
				break
			}
		}
		if results[idx].Task == "" {
			return nil, fmt.Errorf("rta: response-time recurrence for %s did not converge", t.Name)
		}
	}
	return results, nil
}

// Schedulable reports whether every task in the set meets its deadline.
func Schedulable(tasks []Task) (bool, error) {
	res, err := Analyze(tasks)
	if err != nil {
		return false, err
	}
	for _, r := range res {
		if !r.Schedulable {
			return false, nil
		}
	}
	return true, nil
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }
