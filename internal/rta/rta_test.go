package rta

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClassicExample(t *testing.T) {
	// Textbook set (Audsley-style): priorities by index.
	tasks := []Task{
		{Name: "t1", WCET: 3, Period: 7, Priority: 1},
		{Name: "t2", WCET: 3, Period: 12, Priority: 2},
		{Name: "t3", WCET: 5, Period: 20, Priority: 3},
	}
	res, err := Analyze(tasks)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{"t1": 3, "t2": 6, "t3": 20}
	for _, r := range res {
		if !r.Schedulable {
			t.Errorf("%s unschedulable, response %d", r.Task, r.Response)
		}
		if r.Response != want[r.Task] {
			t.Errorf("%s response = %d, want %d", r.Task, r.Response, want[r.Task])
		}
	}
	ok, err := Schedulable(tasks)
	if err != nil || !ok {
		t.Errorf("Schedulable = %v, %v", ok, err)
	}
}

func TestUnschedulableDetected(t *testing.T) {
	tasks := []Task{
		{Name: "hi", WCET: 5, Period: 10, Priority: 1},
		{Name: "lo", WCET: 6, Period: 12, Priority: 2},
	}
	res, err := Analyze(tasks)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Task == "lo" && r.Schedulable {
			t.Error("lo reported schedulable at 104% utilization demand")
		}
		if r.Task == "hi" && !r.Schedulable {
			t.Error("hi must be schedulable alone")
		}
	}
	if ok, _ := Schedulable(tasks); ok {
		t.Error("set reported schedulable")
	}
}

func TestExplicitDeadline(t *testing.T) {
	tasks := []Task{
		{Name: "hi", WCET: 4, Period: 10, Priority: 1},
		{Name: "lo", WCET: 3, Period: 20, Deadline: 6, Priority: 2},
	}
	res, err := Analyze(tasks)
	if err != nil {
		t.Fatal(err)
	}
	// lo's response is 7 > its 6-cycle constrained deadline.
	for _, r := range res {
		if r.Task == "lo" && r.Schedulable {
			t.Errorf("lo schedulable with response %d and deadline 6", r.Response)
		}
	}
}

func TestPriorityTieBreaksByOrder(t *testing.T) {
	tasks := []Task{
		{Name: "first", WCET: 2, Period: 10, Priority: 1},
		{Name: "second", WCET: 2, Period: 10, Priority: 1},
	}
	res, err := Analyze(tasks)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Result{}
	for _, r := range res {
		byName[r.Task] = r
	}
	if byName["first"].Response != 2 {
		t.Errorf("first response = %d, want 2", byName["first"].Response)
	}
	if byName["second"].Response != 4 {
		t.Errorf("second response = %d, want 4 (preempted by first)", byName["second"].Response)
	}
}

func TestValidation(t *testing.T) {
	bad := [][]Task{
		{{Name: "", WCET: 1, Period: 2}},
		{{Name: "x", WCET: 0, Period: 2}},
		{{Name: "x", WCET: 1, Period: 0}},
		{{Name: "x", WCET: 1, Period: 5, Deadline: -1}},
		{{Name: "x", WCET: 5, Period: 10, Deadline: 3}},                    // WCET > deadline
		{{Name: "x", WCET: 1, Period: 2}, {Name: "x", WCET: 1, Period: 2}}, // dup
	}
	for i, ts := range bad {
		if _, err := Analyze(ts); err == nil {
			t.Errorf("case %d: invalid task set accepted", i)
		}
	}
}

func TestUtilization(t *testing.T) {
	u := Utilization([]Task{
		{Name: "a", WCET: 1, Period: 4},
		{Name: "b", WCET: 1, Period: 2},
	})
	if math.Abs(u-0.75) > 1e-12 {
		t.Errorf("utilization = %g, want 0.75", u)
	}
}

// Property: the highest-priority task's response equals its WCET, and
// every response is at least the task's own WCET.
func TestResponseBoundsProperty(t *testing.T) {
	f := func(seed uint32) bool {
		rnd := seed
		next := func(mod uint32) int64 {
			rnd = rnd*1664525 + 1013904223
			return int64(rnd%mod) + 1
		}
		var tasks []Task
		for i := 0; i < 4; i++ {
			c := next(5)
			tasks = append(tasks, Task{
				Name:     string(rune('a' + i)),
				WCET:     c,
				Period:   c + next(40),
				Priority: i,
			})
		}
		res, err := Analyze(tasks)
		if err != nil {
			return true // some random sets are invalid (WCET > deadline); skip
		}
		for i, r := range res {
			if r.Schedulable && r.Response < tasks[i].WCET {
				return false
			}
		}
		// Highest priority is tasks[0].
		return res[0].Response == tasks[0].WCET
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: adding a higher-priority task never decreases anyone's
// response time (monotonicity of interference).
func TestInterferenceMonotonicityProperty(t *testing.T) {
	f := func(seed uint32) bool {
		rnd := seed
		next := func(mod uint32) int64 {
			rnd = rnd*1664525 + 1013904223
			return int64(rnd%mod) + 1
		}
		low := Task{Name: "low", WCET: next(10), Period: 1000, Priority: 10}
		base := []Task{low}
		extra := Task{Name: "mid", WCET: next(5), Period: 20 + next(50), Priority: 1}
		resBase, err1 := Analyze(base)
		resMore, err2 := Analyze([]Task{low, extra})
		if err1 != nil || err2 != nil {
			return true
		}
		var before, after int64
		for _, r := range resBase {
			if r.Task == "low" {
				before = r.Response
			}
		}
		for _, r := range resMore {
			if r.Task == "low" {
				after = r.Response
			}
		}
		return after >= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
