// Package wcet is the public SDK for the repository's multicore-contention
// analysis: the stable, versioned surface through which OEM and
// software-provider toolchains integrate the paper's contention models
// (DiazMKAC18) without depending on internal packages.
//
// The package inverts the dependency direction of the rest of the module:
// contention models are plugins behind one interface, and the serving,
// CLI and experiment layers are generic over a model registry. Adding a
// model or platform is a registration, not a cross-cutting edit.
//
// # Concepts
//
// A [ContentionModel] turns an [Input] — the analysed task's isolation
// debug-counter readings, its contenders' readings (or resource-usage
// templates, or exact per-target access counts), the platform latency
// characterisation and the deployment scenario — into an [Estimate]: a
// contention-aware WCET bound.
//
// A [Registry] holds named models. [DefaultRegistry] ships with the
// paper's models pre-registered under canonical names with aliases:
//
//	ftc           fully time-composable bound (Eq. 2-8)
//	ilpPtac       partially time-composable ILP bound (Eq. 9-23)
//	ftcFsb        fTC under the front-side-bus collapse (§4.3)
//	templatePtac  ILP bound against contender resource-usage templates
//	ideal         reference bound from exact PTACs (Eq. 1); a validation
//	              oracle, not obtainable from the TC27x DSU
//
// An [Analyzer] is the facade the other layers build on: functional
// options fix the platform, scenario, model set, cache and concurrency
// once, and [Analyzer.Analyze] then composes validation, model fan-out
// and an optional response-time-analysis verdict in one call.
//
// A [TableStore] makes the platform characterisation itself versioned:
// [WithTableStore] attaches a store of content-addressed latency tables
// (internal/tabstore is the shipped implementation), and Request.TableRef
// then selects a table per call by named ref ("tc27x/default") or
// immutable ID. Estimate-cache keys content-address the table, so
// retargeting a ref — the serving layer's hot-swap — can never surface a
// stale bound.
//
// # Quick use
//
//	an, err := wcet.NewAnalyzer(wcet.WithModels("ftc", "ilpPtac"))
//	...
//	res, err := an.Analyze(ctx, wcet.Request{
//		Analysed:   taskReadings,
//		Contenders: []wcet.Readings{contenderReadings},
//	})
//	for _, e := range res.Estimates {
//		fmt.Println(e.Name, e.WCET())
//	}
//
// # Extending
//
// Register a custom model (a new bound, a different platform's
// arbitration, a vendor-specific refinement) and every consumer of the
// registry — the wcetd /v2/analyze endpoint, the campaign engine's sweep
// grids, the CLI — can run it by name with no changes to those layers:
//
//	reg := wcet.NewDefaultRegistry()
//	err := reg.Register(myModel, "myAlias")
//	an, err := wcet.NewAnalyzer(wcet.WithRegistry(reg), wcet.WithModels("myModel"))
//
// # Table lifecycle
//
// The serving workflow for re-measured silicon is calibrate → register →
// promote → analyze: a calibration rig streams DSU counter batches into
// the estimator (internal/calib, or wcetd's POST /v2/calibrate), the
// converged candidate is registered in the table store under a ref, the
// ref is promoted to the serving default (wcetd's
// POST /v2/tables/{ref}/promote — an atomic hot-swap, no restart), and
// subsequent analyses evaluate under it. Every consumer that caches
// results keys them by the table's content address, so versions never
// bleed into each other.
//
// # Versioning
//
// This package is the compatibility boundary: the /v1 HTTP API and the
// cmd/wcet CLI's default output are frozen (golden-tested byte-identical),
// while /v2 exposes the registry's full model set. Internal packages may
// change freely underneath.
package wcet
