package wcet

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry is a concurrency-safe set of named contention models. Models
// register once under their canonical name plus optional aliases;
// consumers resolve any of those spellings back to the model. All methods
// are safe for concurrent use.
type Registry struct {
	mu     sync.RWMutex
	models map[string]ContentionModel // canonical name -> model
	names  map[string]string          // every accepted spelling -> canonical name
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		models: make(map[string]ContentionModel),
		names:  make(map[string]string),
	}
}

// NewDefaultRegistry returns a fresh registry with the paper's models
// registered: ftc, ilpPtac, ftcFsb, templatePtac and ideal, each with its
// display-name alias ("fTC", "ILP-PTAC", ...).
func NewDefaultRegistry() *Registry {
	r := NewRegistry()
	r.MustRegister(ftcModel(), "fTC", "FTC")
	r.MustRegister(ilpPtacModel(), "ILP-PTAC", "ilp-ptac")
	r.MustRegister(ftcFsbModel(), "fTC-FSB", "ftc-fsb")
	r.MustRegister(templatePtacModel(), "ILP-PTAC-template", "ilpPtacTemplate")
	r.MustRegister(idealModel(), "Ideal")
	return r
}

// defaultRegistry backs DefaultRegistry. One shared instance lets the
// daemon, the CLI and the experiment runner agree on the model set by
// default.
var (
	defaultRegistryOnce sync.Once
	defaultRegistry     *Registry
)

// DefaultRegistry returns the shared process-wide registry, created with
// the built-in models on first use. Registering application models into it
// makes them visible to every default-configured Analyzer, server and
// experiment grid in the process.
func DefaultRegistry() *Registry {
	defaultRegistryOnce.Do(func() { defaultRegistry = NewDefaultRegistry() })
	return defaultRegistry
}

// Register adds m under its canonical name plus the given aliases. It
// fails if any spelling (canonical or alias) is already taken — silent
// replacement would let one layer's "ftc" quietly differ from another's.
func (r *Registry) Register(m ContentionModel, aliases ...string) error {
	name := m.Name()
	if name == "" {
		return fmt.Errorf("wcet: cannot register a model with an empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := make(map[string]bool, 1+len(aliases))
	for _, spelling := range append([]string{name}, aliases...) {
		if spelling == "" {
			return fmt.Errorf("wcet: model %s: empty alias", name)
		}
		if !validName(spelling) {
			return fmt.Errorf("wcet: model %s: name %q contains characters outside [A-Za-z0-9._-]", name, spelling)
		}
		if prior, ok := r.names[spelling]; ok {
			return fmt.Errorf("wcet: name %q already registered (canonical %q)", spelling, prior)
		}
		if seen[spelling] {
			return fmt.Errorf("wcet: model %s: alias %q repeated", name, spelling)
		}
		seen[spelling] = true
	}
	r.models[name] = m
	r.names[name] = name
	for _, a := range aliases {
		r.names[a] = name
	}
	return nil
}

// validName restricts model names and aliases to [A-Za-z0-9._-]: names are
// interpolated into cache-key renderings, wire responses and error lists,
// so separator characters (",", ";", quotes, spaces) would let one name
// alias another's key segment.
func validName(s string) bool {
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// MustRegister is Register for startup-time registration of known-good
// models; it panics on conflict.
func (r *Registry) MustRegister(m ContentionModel, aliases ...string) {
	if err := r.Register(m, aliases...); err != nil {
		panic(err)
	}
}

// Resolve maps any registered spelling (canonical name or alias) to its
// model. An empty name resolves to ilpPtac when registered — the paper's
// recommended bound and the historical wire default. Unknown names error
// with the full registered set, so a typo in a request or a grid is
// self-diagnosing.
func (r *Registry) Resolve(name string) (ContentionModel, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	canon, ok := r.names[r.normalize(name)]
	if !ok {
		return nil, r.unknownLocked(name)
	}
	return r.models[canon], nil
}

// Canonical maps any registered spelling to the canonical model name.
func (r *Registry) Canonical(name string) (string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	canon, ok := r.names[r.normalize(name)]
	if !ok {
		return "", r.unknownLocked(name)
	}
	return canon, nil
}

// normalize applies the empty-name default. Callers hold r.mu.
func (r *Registry) normalize(name string) string {
	if name == "" {
		return "ilpPtac"
	}
	return name
}

// unknownLocked builds the unknown-model error; callers hold r.mu.
func (r *Registry) unknownLocked(name string) error {
	names := make([]string, 0, len(r.models))
	for n := range r.models {
		names = append(names, n)
	}
	sort.Strings(names)
	return fmt.Errorf("wcet: unknown model %q (registered: %s)", name, strings.Join(names, ", "))
}

// Names returns the canonical model names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.models))
	for n := range r.models {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Aliases returns the alternative spellings registered for a canonical
// name, sorted (the canonical name itself excluded).
func (r *Registry) Aliases(canonical string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for spelling, canon := range r.names {
		if canon == canonical && spelling != canonical {
			out = append(out, spelling)
		}
	}
	sort.Strings(out)
	return out
}
