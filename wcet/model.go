package wcet

import (
	"context"
	"fmt"

	"repro/internal/core"
)

// ContentionModel is the plugin interface of the SDK: anything that can
// bound the multicore contention of one analysed task from an Input.
//
// Name returns the model's canonical registry name (lowerCamelCase, e.g.
// "ilpPtac"); it is how callers select the model in Analyzer requests, in
// the /v2 service API and in experiment grids. Estimate computes the
// bound. Implementations must be safe for concurrent use: the Analyzer
// fans models out in parallel and the service invokes them from many
// requests at once. Estimate should honour ctx cancellation where it can;
// built-in models check it on entry and then run to completion (an ILP
// solve is not preemptible).
type ContentionModel interface {
	Name() string
	Estimate(ctx context.Context, in Input) (Estimate, error)
}

// modelFunc adapts a function to ContentionModel.
type modelFunc struct {
	name string
	fn   func(ctx context.Context, in Input) (Estimate, error)
}

func (m modelFunc) Name() string { return m.name }

func (m modelFunc) Estimate(ctx context.Context, in Input) (Estimate, error) {
	if err := ctx.Err(); err != nil {
		return Estimate{}, err
	}
	return m.fn(ctx, in)
}

// NewModel adapts a plain estimate function into a ContentionModel — the
// cheapest way to register a custom bound.
func NewModel(name string, fn func(ctx context.Context, in Input) (Estimate, error)) ContentionModel {
	return modelFunc{name: name, fn: fn}
}

// Built-in model adapters. They translate the SDK Input onto the
// underlying free functions; registration happens in NewDefaultRegistry.

func ftcModel() ContentionModel {
	return NewModel("ftc", func(_ context.Context, in Input) (Estimate, error) {
		return core.FTC(in.coreInput())
	})
}

func ilpPtacModel() ContentionModel {
	return NewModel("ilpPtac", func(_ context.Context, in Input) (Estimate, error) {
		return core.ILPPTAC(in.coreInput(), in.ptacOptions())
	})
}

func ftcFsbModel() ContentionModel {
	return NewModel("ftcFsb", func(_ context.Context, in Input) (Estimate, error) {
		return core.FTCFSB(in.coreInput())
	})
}

func templatePtacModel() ContentionModel {
	return NewModel("templatePtac", func(_ context.Context, in Input) (Estimate, error) {
		if len(in.Templates) == 0 {
			return Estimate{}, fmt.Errorf("wcet: model templatePtac needs at least one contender template in Input.Templates")
		}
		return core.ILPPTACTemplate(in.coreInput(), in.Templates, in.ptacOptions())
	})
}

func idealModel() ContentionModel {
	return NewModel("ideal", func(_ context.Context, in Input) (Estimate, error) {
		if in.AnalysedPTAC == nil || len(in.ContenderPTACs) == 0 {
			return Estimate{}, fmt.Errorf("wcet: model ideal needs exact per-target access counts (Input.AnalysedPTAC and Input.ContenderPTACs)")
		}
		// Round-robin arbitration lets each contender delay each analysed
		// request once, so per-contender worst cases sum.
		var delta int64
		for _, nb := range in.ContenderPTACs {
			delta += core.Ideal(in.AnalysedPTAC, nb, in.Latencies)
		}
		return Estimate{
			Model:            "ideal",
			IsolationCycles:  in.Analysed.CCNT,
			ContentionCycles: delta,
		}, nil
	})
}
