package wcet

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/rta"
	"repro/internal/telemetry"
)

// Process-wide analyzer telemetry on the default registry, exposed by
// wcetd's GET /metrics. All Analyzer instances share these series: the
// per-model label is the interesting axis, not which facade instance
// evaluated it.
var (
	mEstimates = telemetry.Default().CounterVec("analyzer_estimates_total",
		"Model evaluations completed, by canonical model name (cache hits included).", "model")
	mSolveSeconds = telemetry.Default().HistogramVec("analyzer_solve_seconds",
		"Wall time of actual model solves, by canonical model name (cache hits excluded).", "model", nil)
	mEstCacheHits = telemetry.Default().Counter("analyzer_cache_hits_total",
		"Estimate-cache hits across all Analyzers.")
	mEstCacheMisses = telemetry.Default().Counter("analyzer_cache_misses_total",
		"Estimate-cache misses (each one is a real solve) across all Analyzers.")
)

// Analyzer is the SDK facade: it fixes a registry, platform, scenario,
// default model set, optional estimate cache and fan-out width once, and
// Analyze then composes validation, concurrent model evaluation and an
// optional response-time-analysis verdict per request. An Analyzer is
// immutable after construction and safe for concurrent use.
type Analyzer struct {
	reg           *Registry
	lat           LatencyTable
	store         TableStore
	sc            Scenario
	models        []string // canonical, resolved at construction
	conc          int
	solverWorkers int
	cache         *estimateCache
}

// TableStore resolves named latency-table references — the SDK's view of
// a versioned table store (internal/tabstore implements it). ResolveTable
// maps a reference (a named ref like "tc27x/default" or an immutable
// table ID) to the table and its content-addressed identity. It must be
// safe for concurrent use; refs may be retargeted between calls, which is
// exactly how a serving deployment hot-swaps characterisations.
type TableStore interface {
	ResolveTable(ref string) (LatencyTable, string, error)
}

// Option configures an Analyzer.
type Option func(*Analyzer) error

// WithRegistry selects the model registry; the default is the shared
// DefaultRegistry.
func WithRegistry(reg *Registry) Option {
	return func(a *Analyzer) error {
		if reg == nil {
			return fmt.Errorf("wcet: WithRegistry(nil)")
		}
		a.reg = reg
		return nil
	}
}

// WithPlatform selects a named built-in platform characterisation.
// Currently "tc27x" (the default) is defined; the option exists so new
// platforms are a name, not an API change.
func WithPlatform(name string) Option {
	return func(a *Analyzer) error {
		switch name {
		case "tc27x":
			a.lat = TC27x()
			return nil
		default:
			return fmt.Errorf("wcet: unknown platform %q (known: tc27x)", name)
		}
	}
}

// WithLatencyTable supplies a custom platform characterisation — a
// re-measured silicon revision, a perturbed what-if table, another SoC.
func WithLatencyTable(lat LatencyTable) Option {
	return func(a *Analyzer) error {
		if err := lat.Validate(); err != nil {
			return err
		}
		a.lat = lat
		return nil
	}
}

// WithTableStore attaches a versioned latency-table store: requests may
// then select a characterisation per call via Request.TableRef (a named
// ref or an immutable table ID) instead of analysing under the Analyzer's
// fixed table. The estimate cache content-addresses the table, so hits
// stay correct across table versions.
func WithTableStore(ts TableStore) Option {
	return func(a *Analyzer) error {
		if ts == nil {
			return fmt.Errorf("wcet: WithTableStore(nil)")
		}
		a.store = ts
		return nil
	}
}

// WithScenario fixes the deployment-scenario tailoring; the default is
// Scenario1. Requests may override it per call.
func WithScenario(sc Scenario) Option {
	return func(a *Analyzer) error {
		if err := sc.Validate(); err != nil {
			return err
		}
		a.sc = sc
		return nil
	}
}

// WithModels fixes the default model set (canonical names or aliases),
// evaluated in the given order; alias-equivalent duplicates collapse to
// one entry. Requests may override it per call.
func WithModels(names ...string) Option {
	return func(a *Analyzer) error {
		if len(names) == 0 {
			return fmt.Errorf("wcet: WithModels needs at least one model")
		}
		a.models = names
		return nil
	}
}

// WithCache gives the Analyzer an LRU of the given capacity over
// (model, input) estimates, so identical cells across repeated analyses
// cost a map lookup instead of a solve.
func WithCache(entries int) Option {
	return func(a *Analyzer) error {
		if entries <= 0 {
			return fmt.Errorf("wcet: WithCache needs a positive capacity, got %d", entries)
		}
		a.cache = newEstimateCache(entries)
		return nil
	}
}

// WithConcurrency caps how many models evaluate in parallel per Analyze
// call; the default is GOMAXPROCS.
func WithConcurrency(n int) Option {
	return func(a *Analyzer) error {
		if n <= 0 {
			return fmt.Errorf("wcet: WithConcurrency needs a positive width, got %d", n)
		}
		a.conc = n
		return nil
	}
}

// WithSolverWorkers sets the branch & bound worker count ILP-based models
// solve with (Input.SolverWorkers). 1 — the default — keeps every solve
// sequential; higher values let large searches fan out across cores while
// small trees still run sequentially under the solver's node-count
// heuristic. Bounds are worker-count independent, so this is purely a
// latency knob.
func WithSolverWorkers(n int) Option {
	return func(a *Analyzer) error {
		if n <= 0 {
			return fmt.Errorf("wcet: WithSolverWorkers needs a positive count, got %d", n)
		}
		a.solverWorkers = n
		return nil
	}
}

// NewAnalyzer builds an Analyzer. Without options it analyses on the
// TC27x under Scenario 1 with the paper's two headline models, fTC and
// ILP-PTAC — the historical behaviour of the v1 service and CLI.
func NewAnalyzer(opts ...Option) (*Analyzer, error) {
	a := &Analyzer{
		lat:           TC27x(),
		sc:            Scenario1(),
		models:        []string{"ftc", "ilpPtac"},
		conc:          runtime.GOMAXPROCS(0),
		solverWorkers: 1,
	}
	for _, opt := range opts {
		if err := opt(a); err != nil {
			return nil, err
		}
	}
	if a.reg == nil {
		a.reg = DefaultRegistry()
	}
	// Resolve the default model set now so a misconfigured Analyzer fails
	// at construction, not on the first request.
	canonical, err := a.canonicalModels(a.models)
	if err != nil {
		return nil, err
	}
	a.models = canonical
	return a, nil
}

// MustNewAnalyzer is NewAnalyzer for known-good option sets.
func MustNewAnalyzer(opts ...Option) *Analyzer {
	a, err := NewAnalyzer(opts...)
	if err != nil {
		panic(err)
	}
	return a
}

// Registry exposes the analyzer's registry (for listing models).
func (a *Analyzer) Registry() *Registry { return a.reg }

// Models returns the default model set, canonical, in evaluation order.
func (a *Analyzer) Models() []string { return append([]string(nil), a.models...) }

// CacheStats reports the estimate cache's cumulative hits and misses
// (zeros when no cache was configured).
func (a *Analyzer) CacheStats() (hits, misses int64) {
	if a.cache == nil {
		return 0, 0
	}
	return a.cache.stats()
}

// canonicalModels resolves names to canonical form, preserving order and
// dropping duplicates.
func (a *Analyzer) canonicalModels(names []string) ([]string, error) {
	out := make([]string, 0, len(names))
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		canon, err := a.reg.Canonical(n)
		if err != nil {
			return nil, err
		}
		if !seen[canon] {
			seen[canon] = true
			out = append(out, canon)
		}
	}
	return out, nil
}

// Request is one analysis: what was measured (or pledged), which models to
// run, and the optional schedulability question.
type Request struct {
	// Analysed is the analysed task's isolation measurement.
	Analysed Readings
	// Contenders holds the contenders' isolation measurements.
	Contenders []Readings
	// Templates holds contender resource-usage contracts (templatePtac).
	Templates []Template
	// AnalysedPTAC / ContenderPTACs are exact per-target access counts
	// (ideal).
	AnalysedPTAC   PTAC
	ContenderPTACs []PTAC
	// Scenario overrides the Analyzer's deployment scenario when non-zero
	// (any name, placement or flag set); leave it zero to analyse under
	// the Analyzer's default.
	Scenario Scenario
	// TableRef selects the platform characterisation from the Analyzer's
	// table store when non-empty — a named ref ("tc27x/default") or an
	// immutable table ID. Requires WithTableStore; leave it empty to
	// analyse under the Analyzer's fixed table.
	TableRef string
	// StallMode and DropContenderInfo tune the ILP-based models.
	StallMode         StallMode
	DropContenderInfo bool
	// Models overrides the Analyzer's model set when non-empty (canonical
	// names or aliases, evaluated in order). Alias-equivalent duplicates
	// collapse to one entry, so Estimates can be shorter than Models —
	// look results up with Result.Estimate rather than zipping by index.
	// (The /v2 wire API rejects duplicates instead.)
	Models []string
	// RTA, when non-nil, additionally asks for a response-time-analysis
	// verdict using one computed bound as the analysed task's WCET.
	RTA *RTASpec
}

// RTASpec asks for a fixed-priority schedulability verdict on the analysed
// task's core.
type RTASpec struct {
	// Model selects which computed bound becomes the analysed task's WCET
	// (canonical name or alias; empty selects ilpPtac). It must be among
	// the request's models.
	Model string
	// Task is the analysed task's timing parameters; its WCET field is
	// filled from the selected model's bound. An empty Name becomes
	// "analysed".
	Task RTATask
	// Others are the co-resident tasks with their own contention-aware
	// WCETs.
	Others []RTATask
}

// ModelEstimate is one model's bound, labelled with its canonical registry
// name (Estimate.Model keeps the model's display name).
type ModelEstimate struct {
	// Name is the canonical registry name ("ftc", "ilpPtac", ...).
	Name string
	Estimate
}

// RTAVerdict is the schedulability outcome for the analysed task's core.
type RTAVerdict struct {
	// Model is the canonical name of the bound used as the analysed
	// task's WCET; WCETCycles is its value.
	Model      string
	WCETCycles int64
	// Utilization is Σ C_i / T_i over the whole task set.
	Utilization float64
	// Schedulable reports whether every task meets its deadline.
	Schedulable bool
	Results     []RTAResult
}

// Result is one analysis outcome: the requested models' bounds in request
// order, plus the RTA verdict when one was asked for.
type Result struct {
	Estimates []ModelEstimate
	RTA       *RTAVerdict
}

// Estimate returns the bound a model produced in this result, looked up by
// canonical name.
func (r *Result) Estimate(canonical string) (Estimate, bool) {
	for _, e := range r.Estimates {
		if e.Name == canonical {
			return e.Estimate, true
		}
	}
	return Estimate{}, false
}

// Analyze validates the request, fans the selected models out across the
// configured concurrency, and (when asked) derives the RTA verdict from
// the selected bound. Estimates come back in model order regardless of
// completion order; the first model error fails the call, labelled with
// the model's name.
func (a *Analyzer) Analyze(ctx context.Context, req Request) (*Result, error) {
	return a.analyze(ctx, req, make(chan struct{}, a.conc))
}

// BatchResult is one request's outcome within AnalyzeBatch: exactly one of
// Result and Err is set. A batch never fails wholesale because one item is
// invalid or one model errors — every item reports independently.
type BatchResult struct {
	Result *Result
	Err    error
}

// AnalyzeBatch analyses many requests as one unit of work, returning one
// BatchResult per request in input order regardless of completion order.
//
// The batch shares a single evaluation semaphore of the Analyzer's
// configured width across every (request, model) pair, so total solver
// parallelism is bounded by WithConcurrency no matter how many items the
// batch carries — exactly the admission discipline wcetd's /v1/batch
// endpoint applies through the campaign engine. Batching is also where the
// solver-state amortization of internal/lp and internal/ilp pays off:
// consecutive solves drawn from the pooled solvers reuse their tableau
// arenas instead of re-allocating per cell, and the optional estimate
// cache (WithCache) is shared across the whole batch, so duplicate cells
// cost a lookup. Sweep-style callers (experiments.Grid) get the same
// effect by holding one Analyzer across cells.
func (a *Analyzer) AnalyzeBatch(ctx context.Context, reqs []Request) []BatchResult {
	out := make([]BatchResult, len(reqs))
	sem := make(chan struct{}, a.conc)
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := a.analyze(ctx, reqs[i], sem)
			out[i] = BatchResult{Result: res, Err: err}
		}(i)
	}
	wg.Wait()
	return out
}

// analyze is the shared core of Analyze and AnalyzeBatch; sem bounds model
// evaluations and may be shared across concurrent calls.
func (a *Analyzer) analyze(ctx context.Context, req Request, sem chan struct{}) (*Result, error) {
	names := a.models
	if len(req.Models) > 0 {
		var err error
		if names, err = a.canonicalModels(req.Models); err != nil {
			return nil, err
		}
	}
	sc := a.sc
	if !scenarioIsZero(req.Scenario) {
		sc = req.Scenario
	}
	lat := &a.lat
	if req.TableRef != "" {
		if a.store == nil {
			return nil, fmt.Errorf("wcet: request selects table %q but the Analyzer has no table store (use WithTableStore)", req.TableRef)
		}
		resolved, _, err := a.store.ResolveTable(req.TableRef)
		if err != nil {
			return nil, err
		}
		if err := resolved.Validate(); err != nil {
			return nil, fmt.Errorf("wcet: table %q: %w", req.TableRef, err)
		}
		lat = &resolved
	}
	in := Input{
		Analysed:          req.Analysed,
		Contenders:        req.Contenders,
		Templates:         req.Templates,
		AnalysedPTAC:      req.AnalysedPTAC,
		ContenderPTACs:    req.ContenderPTACs,
		Latencies:         lat,
		Scenario:          sc,
		StallMode:         req.StallMode,
		DropContenderInfo: req.DropContenderInfo,
		SolverWorkers:     a.solverWorkers,
	}
	_, vspan := telemetry.StartSpan(ctx, "validate")
	err := in.Validate()
	vspan.End()
	if err != nil {
		return nil, err
	}

	estimates, err := a.fanOut(ctx, names, in, sem)
	if err != nil {
		return nil, err
	}
	res := &Result{Estimates: estimates}
	if req.RTA != nil {
		_, rspan := telemetry.StartSpan(ctx, "rta")
		verdict, err := a.analyzeRTA(*req.RTA, res)
		rspan.End()
		if err != nil {
			return nil, err
		}
		res.RTA = verdict
	}
	return res, nil
}

// scenarioIsZero reports whether a request carries no scenario override:
// an unnamed scenario with a custom deployment or flag still counts as
// one — silently swapping in the default would bound the wrong system.
func scenarioIsZero(sc Scenario) bool {
	return sc.Name == "" && len(sc.Deploy.Code) == 0 && len(sc.Deploy.Data) == 0 &&
		!sc.CodeCountExact && !sc.CacheableDataFloor
}

// fanOut evaluates the models concurrently, bounded by the caller's
// semaphore, consulting the estimate cache around each solve.
func (a *Analyzer) fanOut(ctx context.Context, names []string, in Input, sem chan struct{}) ([]ModelEstimate, error) {
	out := make([]ModelEstimate, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		model, err := a.reg.Resolve(name)
		if err != nil {
			// The set was canonicalized against the same registry; a miss
			// here means the model was unregistered mid-flight.
			return nil, err
		}
		wg.Add(1)
		go func(i int, name string, model ContentionModel) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			mctx, span := telemetry.StartSpan(ctx, "model:"+name)
			est, cached, err := a.estimateCached(mctx, name, model, in)
			if err != nil {
				span.End()
				errs[i] = fmt.Errorf("wcet: model %s: %w", name, err)
				return
			}
			if span != nil {
				span.SetAttr("cached", cached)
				span.SetAttr("nodes", est.Nodes)
				span.SetAttr("warmStarts", est.WarmStarts)
				span.End()
			}
			mEstimates.With(name).Inc()
			out[i] = ModelEstimate{Name: name, Estimate: est}
		}(i, name, model)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// estimateCached wraps one model evaluation with the optional LRU; the
// returned bool reports whether the cache served it.
func (a *Analyzer) estimateCached(ctx context.Context, name string, model ContentionModel, in Input) (Estimate, bool, error) {
	if a.cache == nil {
		est, err := a.timedEstimate(ctx, name, model, in)
		return est, false, err
	}
	key := canonKey(name, in)
	if est, ok := a.cache.get(key); ok {
		mEstCacheHits.Inc()
		return est, true, nil
	}
	mEstCacheMisses.Inc()
	est, err := a.timedEstimate(ctx, name, model, in)
	if err != nil {
		return Estimate{}, false, err
	}
	a.cache.put(key, est)
	return est, false, nil
}

// timedEstimate runs the real solve under the per-model latency
// histogram (cache hits never reach it, so the series measures solver
// work, not lookup time).
func (a *Analyzer) timedEstimate(ctx context.Context, name string, model ContentionModel, in Input) (Estimate, error) {
	start := time.Now()
	est, err := model.Estimate(ctx, in)
	mSolveSeconds.With(name).Observe(time.Since(start))
	return est, err
}

// analyzeRTA runs response-time analysis with the analysed task's WCET
// taken from the selected model's bound.
func (a *Analyzer) analyzeRTA(spec RTASpec, res *Result) (*RTAVerdict, error) {
	canon, err := a.reg.Canonical(spec.Model)
	if err != nil {
		return nil, fmt.Errorf("rta.model: %w", err)
	}
	est, ok := res.Estimate(canon)
	if !ok {
		return nil, fmt.Errorf("wcet: rta.model %s is not among the requested models", canon)
	}
	wcet := est.WCET()

	analysed := spec.Task
	if analysed.Name == "" {
		analysed.Name = "analysed"
	}
	analysed.WCET = wcet
	tasks := make([]RTATask, 0, 1+len(spec.Others))
	tasks = append(tasks, analysed)
	tasks = append(tasks, spec.Others...)
	results, err := rta.Analyze(tasks)
	if err != nil {
		return nil, fmt.Errorf("rta: %w", err)
	}

	verdict := &RTAVerdict{
		Model:       canon,
		WCETCycles:  wcet,
		Utilization: rta.Utilization(tasks),
		Schedulable: true,
		Results:     results,
	}
	for _, r := range results {
		if !r.Schedulable {
			verdict.Schedulable = false
		}
	}
	return verdict, nil
}
