package wcet

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

var (
	testAnalysed  = Readings{CCNT: 157800, PS: 18000, DS: 27000, PM: 3000}
	testContender = Readings{CCNT: 500000, PS: 50000, DS: 60000, PM: 8000}
)

func testRequest() Request {
	return Request{Analysed: testAnalysed, Contenders: []Readings{testContender}}
}

func mustPath(t *testing.T, s string) AccessPath {
	t.Helper()
	p, err := ParseAccessPath(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestAnalyzerMatchesCore pins the facade to the underlying free
// functions: the default Analyzer must produce exactly core.FTC and
// core.ILPPTAC for the same input.
func TestAnalyzerMatchesCore(t *testing.T) {
	an := MustNewAnalyzer()
	res, err := an.Analyze(context.Background(), testRequest())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Estimates) != 2 || res.Estimates[0].Name != "ftc" || res.Estimates[1].Name != "ilpPtac" {
		t.Fatalf("default model set = %+v, want [ftc ilpPtac]", res.Estimates)
	}

	lat := TC27x()
	in := core.Input{A: testAnalysed, B: []Readings{testContender}, Lat: &lat, Scenario: core.Scenario1()}
	wantFTC, err := core.FTC(in)
	if err != nil {
		t.Fatal(err)
	}
	wantILP, err := core.ILPPTAC(in, core.PTACOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimates[0].WCET() != wantFTC.WCET() || res.Estimates[0].Model != wantFTC.Model {
		t.Errorf("ftc via analyzer = %v, want %v", res.Estimates[0].Estimate, wantFTC)
	}
	if res.Estimates[1].WCET() != wantILP.WCET() || res.Estimates[1].Model != wantILP.Model {
		t.Errorf("ilpPtac via analyzer = %v, want %v", res.Estimates[1].Estimate, wantILP)
	}
}

func TestAnalyzerModelSelection(t *testing.T) {
	an := MustNewAnalyzer()

	// Per-request override, alias spelling, order preserved, dupes folded.
	req := testRequest()
	req.Models = []string{"fTC-FSB", "ftc", "ftcFsb"}
	res, err := an.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Estimates) != 2 || res.Estimates[0].Name != "ftcFsb" || res.Estimates[1].Name != "ftc" {
		t.Fatalf("estimates = %+v, want [ftcFsb ftc]", res.Estimates)
	}
	if _, ok := res.Estimate("ftcFsb"); !ok {
		t.Error("Result.Estimate(ftcFsb) not found")
	}

	// The FSB collapse can never beat the crossbar-aware bound.
	fsb, _ := res.Estimate("ftcFsb")
	ftc, _ := res.Estimate("ftc")
	if fsb.WCET() < ftc.WCET() {
		t.Errorf("fTC-FSB bound %d below crossbar fTC bound %d", fsb.WCET(), ftc.WCET())
	}

	// Unknown model errors list the registry.
	req.Models = []string{"bogus"}
	if _, err := an.Analyze(context.Background(), req); err == nil || !strings.Contains(err.Error(), "registered:") {
		t.Errorf("unknown model error = %v, want registered-names listing", err)
	}
}

func TestAnalyzerTemplateAndIdealModels(t *testing.T) {
	an := MustNewAnalyzer()

	// templatePtac: pledge budgets instead of readings.
	req := Request{
		Analysed: testAnalysed,
		Templates: []Template{{
			Name: "pledged-corunner",
			MaxRequests: PTAC{
				mustPath(t, "pf0/co"): 400,
				mustPath(t, "lmu/da"): 900,
			},
		}},
		Models: []string{"templatePtac"},
	}
	res, err := an.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimates[0].ContentionCycles <= 0 {
		t.Errorf("templatePtac contention = %d, want positive", res.Estimates[0].ContentionCycles)
	}

	// Missing templates is a model error labelled with the model name.
	req.Templates = nil
	if _, err := an.Analyze(context.Background(), req); err == nil || !strings.Contains(err.Error(), "templatePtac") {
		t.Errorf("templatePtac without templates: err = %v", err)
	}

	// ideal: exact PTACs for both sides.
	ideal := Request{
		Analysed:       testAnalysed,
		AnalysedPTAC:   PTAC{mustPath(t, "pf0/co"): 1000, mustPath(t, "lmu/da"): 2000},
		ContenderPTACs: []PTAC{{mustPath(t, "pf0/co"): 300, mustPath(t, "lmu/da"): 700}},
		Models:         []string{"ideal"},
	}
	ires, err := an.Analyze(context.Background(), ideal)
	if err != nil {
		t.Fatal(err)
	}
	if ires.Estimates[0].ContentionCycles <= 0 {
		t.Errorf("ideal contention = %d, want positive", ires.Estimates[0].ContentionCycles)
	}
	ideal.AnalysedPTAC = nil
	if _, err := an.Analyze(context.Background(), ideal); err == nil || !strings.Contains(err.Error(), "ideal") {
		t.Errorf("ideal without PTACs: err = %v", err)
	}
}

func TestAnalyzerRTAVerdict(t *testing.T) {
	an := MustNewAnalyzer()
	req := testRequest()
	req.RTA = &RTASpec{
		Task:   RTATask{Period: 2_000_000, Priority: 2},
		Others: []RTATask{{Name: "cruiseCtl", WCET: 50_000, Period: 500_000, Priority: 1}},
	}
	res, err := an.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	v := res.RTA
	if v == nil {
		t.Fatal("no RTA verdict")
	}
	ilp, _ := res.Estimate("ilpPtac")
	if v.Model != "ilpPtac" || v.WCETCycles != ilp.WCET() {
		t.Errorf("verdict model/WCET = %s/%d, want ilpPtac/%d", v.Model, v.WCETCycles, ilp.WCET())
	}
	if len(v.Results) != 2 || v.Results[0].Task != "analysed" {
		t.Errorf("verdict results = %+v", v.Results)
	}

	// Selecting a bound that was not computed must fail loudly.
	req.Models = []string{"ftc"}
	req.RTA.Model = "ilpPtac"
	if _, err := an.Analyze(context.Background(), req); err == nil || !strings.Contains(err.Error(), "not among") {
		t.Errorf("rta model outside computed set: err = %v", err)
	}
}

func TestAnalyzerScenarioOverride(t *testing.T) {
	an := MustNewAnalyzer(WithScenario(Scenario1()))
	req := Request{
		Analysed:   Readings{CCNT: 301000, PS: 40000, DS: 51000, PM: 6100, DMC: 1200, DMD: 400},
		Contenders: []Readings{testContender},
		Scenario:   Scenario2(),
		Models:     []string{"ilpPtac"},
	}
	res2, err := an.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	req.Scenario = Scenario{}
	res1, err := an.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Estimates[0].ContentionCycles == res2.Estimates[0].ContentionCycles {
		t.Error("scenario override had no effect on the ILP bound")
	}
}

// TestAnalyzerUnnamedScenarioOverride asserts a per-request scenario with
// custom content but no Name still overrides the Analyzer's default — a
// silently dropped override would bound the wrong system.
func TestAnalyzerUnnamedScenarioOverride(t *testing.T) {
	an := MustNewAnalyzer(WithScenario(Scenario1()))
	req := Request{
		Analysed:   Readings{CCNT: 301000, PS: 40000, DS: 51000, PM: 6100, DMC: 1200, DMD: 400},
		Contenders: []Readings{testContender},
		Models:     []string{"ilpPtac"},
	}
	req.Scenario = Scenario2()
	named, err := an.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	req.Scenario = Scenario2()
	req.Scenario.Name = ""
	unnamed, err := an.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if unnamed.Estimates[0].ContentionCycles != named.Estimates[0].ContentionCycles {
		t.Errorf("unnamed scenario-2 bound %d != named scenario-2 bound %d",
			unnamed.Estimates[0].ContentionCycles, named.Estimates[0].ContentionCycles)
	}
	req.Scenario = Scenario{}
	def, err := an.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if def.Estimates[0].ContentionCycles == named.Estimates[0].ContentionCycles {
		t.Error("scenario-2 override indistinguishable from the scenario-1 default; readings too symmetric for this test")
	}
}

// TestAnalyzerCacheScenarioContent asserts the estimate cache keys the
// scenario by content, not label: two same-named scenarios with different
// tailoring must not share an entry.
func TestAnalyzerCacheScenarioContent(t *testing.T) {
	an := MustNewAnalyzer(WithCache(16), WithModels("ilpPtac"))
	req := Request{
		Analysed:   Readings{CCNT: 301000, PS: 40000, DS: 51000, PM: 6100, DMC: 1200, DMD: 400},
		Contenders: []Readings{testContender},
		Scenario:   Scenario1(),
	}
	res1, err := an.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	twin := Scenario2()
	twin.Name = Scenario1().Name
	req.Scenario = twin
	res2, err := an.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Estimates[0].ContentionCycles == res2.Estimates[0].ContentionCycles {
		t.Errorf("same-named scenario with different tailoring returned the cached bound %d",
			res1.Estimates[0].ContentionCycles)
	}
}

func TestAnalyzerCache(t *testing.T) {
	an := MustNewAnalyzer(WithCache(16), WithModels("ftc"))
	for i := 0; i < 3; i++ {
		if _, err := an.Analyze(context.Background(), testRequest()); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := an.CacheStats()
	if misses != 1 || hits != 2 {
		t.Errorf("cache hits/misses = %d/%d, want 2/1", hits, misses)
	}
}

// TestAnalyzerConcurrent runs many Analyze calls in parallel on a shared
// cached Analyzer; under -race this is the facade's thread-safety proof.
func TestAnalyzerConcurrent(t *testing.T) {
	an := MustNewAnalyzer(WithCache(32), WithConcurrency(2))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				res, err := an.Analyze(context.Background(), testRequest())
				if err != nil {
					t.Error(err)
					return
				}
				if len(res.Estimates) != 2 {
					t.Errorf("estimates = %+v", res.Estimates)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestAnalyzeBatch exercises the batched entry point: results in input
// order, per-item errors that never fail the whole batch, and agreement
// with the single-request path.
func TestAnalyzeBatch(t *testing.T) {
	an := MustNewAnalyzer(WithConcurrency(2))

	bad := testRequest()
	bad.Models = []string{"bogus"}
	sc2 := testRequest()
	sc2.Scenario = Scenario2()
	reqs := []Request{testRequest(), bad, sc2}

	out := an.AnalyzeBatch(context.Background(), reqs)
	if len(out) != len(reqs) {
		t.Fatalf("batch returned %d results for %d requests", len(out), len(reqs))
	}
	if out[0].Err != nil || out[2].Err != nil {
		t.Fatalf("valid items errored: %v / %v", out[0].Err, out[2].Err)
	}
	if out[1].Err == nil || out[1].Result != nil {
		t.Fatalf("invalid item = (%+v, %v), want error only", out[1].Result, out[1].Err)
	}

	// Item results match the single-request path exactly.
	for _, i := range []int{0, 2} {
		want, err := an.Analyze(context.Background(), reqs[i])
		if err != nil {
			t.Fatal(err)
		}
		if len(out[i].Result.Estimates) != len(want.Estimates) {
			t.Fatalf("item %d: %d estimates, want %d", i, len(out[i].Result.Estimates), len(want.Estimates))
		}
		for j, e := range out[i].Result.Estimates {
			if e.WCET() != want.Estimates[j].WCET() || e.Name != want.Estimates[j].Name {
				t.Errorf("item %d model %s: batch bound %d != single bound %d",
					i, e.Name, e.WCET(), want.Estimates[j].WCET())
			}
		}
	}
	// Scenario tailoring was honoured per item, not flattened to the
	// Analyzer default.
	s1, _ := out[0].Result.Estimate("ilpPtac")
	s2, _ := out[2].Result.Estimate("ilpPtac")
	if s1.WCET() == s2.WCET() {
		t.Errorf("scenario override ignored in batch: both bounds = %d", s1.WCET())
	}
}

// TestToyModelEndToEnd is the SDK half of the acceptance criterion:
// registering a new ContentionModel makes it runnable through the facade
// with zero edits anywhere else.
func TestToyModelEndToEnd(t *testing.T) {
	reg := NewDefaultRegistry()
	if err := reg.Register(toyModel("toy", 4242), "TOY"); err != nil {
		t.Fatal(err)
	}
	an := MustNewAnalyzer(WithRegistry(reg), WithModels("TOY", "ftc"))
	res, err := an.Analyze(context.Background(), testRequest())
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimates[0].Name != "toy" || res.Estimates[0].ContentionCycles != 4242 {
		t.Errorf("toy estimate = %+v", res.Estimates[0])
	}
	// The toy bound can even drive the RTA step.
	req := testRequest()
	req.Models = []string{"toy"}
	req.RTA = &RTASpec{Model: "toy", Task: RTATask{Period: 2_000_000, Priority: 1}}
	rres, err := an.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if rres.RTA.Model != "toy" || rres.RTA.WCETCycles != testAnalysed.CCNT+4242 {
		t.Errorf("toy RTA verdict = %+v", rres.RTA)
	}
}
