package wcet

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dsu"
	"repro/internal/platform"
	"repro/internal/rta"
)

// The SDK re-exports the analysis vocabulary as aliases so integrators
// never import internal packages: the types below are the same types the
// models consume, usable (composite literals, methods and all) through
// this public path.

// Readings is one task's isolation debug-counter measurement (the TC27x
// DSU counters: CCNT, PMEM_STALL, DMEM_STALL and the cache-miss counters).
type Readings = dsu.Readings

// LatencyTable is the platform characterisation of the paper's Table 2:
// per (target, operation) worst/best-case latencies and minimum stalls.
type LatencyTable = platform.LatencyTable

// AccessPath is one (SRI target, operation type) pair — the index of every
// per-target quantity in the models.
type AccessPath = platform.TargetOp

// PTAC maps access paths to request counts: the exact per-target access
// counts the ideal model consumes and templates pledge.
type PTAC = map[AccessPath]int64

// Scenario is a deployment configuration's tailoring (paper Table 5).
type Scenario = core.Scenario

// Template is a contender resource-usage contract (paper ref [10]): pledged
// per-path request budgets in place of measured readings.
type Template = core.Template

// StallMode selects how ILP stall-decomposition constraints treat the
// observed stall totals (budget vs exact, see core.StallMode).
type StallMode = core.StallMode

// Stall-mode values, re-exported.
const (
	StallBudget = core.StallBudget
	StallExact  = core.StallExact
)

// Estimate is a model's contention-aware WCET bound, with the WCET, Ratio
// and String methods of the underlying type.
type Estimate = core.Estimate

// RTATask is one periodic task for the response-time-analysis step.
type RTATask = rta.Task

// RTAResult is one task's response-time-analysis outcome.
type RTAResult = rta.Result

// TC27x returns the AURIX TC27x latency characterisation (Table 2), the
// default platform of every Analyzer.
func TC27x() LatencyTable { return platform.TC27xLatencies() }

// Scenario1 is the paper's first evaluation scenario: cacheable code in
// program flash, non-cacheable shared data in the LMU.
func Scenario1() Scenario { return core.Scenario1() }

// Scenario2 is the paper's second evaluation scenario: mixed cacheable and
// non-cacheable LMU data next to cacheable flash code and constants.
func Scenario2() Scenario { return core.Scenario2() }

// AccessPaths lists every legal (target, operation) pair of the platform,
// in stable order — the key space of PTAC maps and templates.
func AccessPaths() []AccessPath { return platform.AccessPairs() }

// ParseAccessPath parses the wire form of an access path ("pf0/co",
// "lmu/da", ...), the String form of AccessPath.
func ParseAccessPath(s string) (AccessPath, error) {
	for _, to := range platform.AccessPairs() {
		if to.String() == s {
			return to, nil
		}
	}
	return AccessPath{}, fmt.Errorf("wcet: unknown access path %q (want one of %v)", s, platform.AccessPairs())
}

// EnforcedContentionBound bounds the contention a contender can inflict
// when an RTOS-level enforcer suspends it at a stall-cycle quota — the
// contender-knowledge-free instrument next to the registry's models.
func EnforcedContentionBound(quota int64, lat *LatencyTable) int64 {
	return core.EnforcedContentionBound(quota, lat)
}

// Input is everything a contention model may observe for one analysis.
// Which fields a model requires depends on the model: the DSU-driven
// models (ftc, ilpPtac, ftcFsb) consume Contenders readings, templatePtac
// consumes Templates, and ideal consumes the exact PTACs.
type Input struct {
	// Analysed is the analysed task's isolation measurement.
	Analysed Readings
	// Contenders holds one isolation measurement per contender.
	Contenders []Readings
	// Templates holds contender resource-usage contracts, for models that
	// analyse against pledged budgets instead of measurements.
	Templates []Template
	// AnalysedPTAC and ContenderPTACs are exact per-target access counts,
	// for models (ideal) that assume full knowledge. Not obtainable from
	// the TC27x DSU; the simulator's ground truth can produce them.
	AnalysedPTAC   PTAC
	ContenderPTACs []PTAC
	// Latencies is the platform characterisation. Must be non-nil.
	Latencies *LatencyTable
	// Scenario is the deployment-scenario tailoring.
	Scenario Scenario
	// StallMode picks budget (default) vs exact stall decomposition for
	// ILP-based models.
	StallMode StallMode
	// DropContenderInfo removes the contenders' constraints from ILP-based
	// models, making their bounds fully time-composable (§3.5).
	DropContenderInfo bool
	// SolverWorkers is the branch & bound worker count for ILP-based
	// models; 0 or 1 solves sequentially. Results are unaffected: the
	// solver's deterministic tie-breaking keeps bounds independent of the
	// worker count.
	SolverWorkers int
}

// Validate checks the parts of the input every model shares; model-specific
// requirements (templates present, PTACs present) are checked by the model.
func (in Input) Validate() error {
	if in.Latencies == nil {
		return fmt.Errorf("wcet: nil latency table")
	}
	if err := in.Latencies.Validate(); err != nil {
		return err
	}
	if err := in.Analysed.Validate(); err != nil {
		return fmt.Errorf("wcet: analysed readings: %w", err)
	}
	for i, b := range in.Contenders {
		if err := b.Validate(); err != nil {
			return fmt.Errorf("wcet: contender %d readings: %w", i, err)
		}
	}
	for _, tp := range in.Templates {
		if err := tp.Validate(); err != nil {
			return err
		}
	}
	for to, n := range in.AnalysedPTAC {
		if !to.Valid() {
			return fmt.Errorf("wcet: analysed PTAC: illegal access path %s", to)
		}
		if n < 0 {
			return fmt.Errorf("wcet: analysed PTAC: negative count %d for %s", n, to)
		}
	}
	for i, p := range in.ContenderPTACs {
		for to, n := range p {
			if !to.Valid() {
				return fmt.Errorf("wcet: contender %d PTAC: illegal access path %s", i, to)
			}
			if n < 0 {
				return fmt.Errorf("wcet: contender %d PTAC: negative count %d for %s", i, n, to)
			}
		}
	}
	return in.Scenario.Validate()
}

// coreInput maps the SDK input onto the model layer's input.
func (in Input) coreInput() core.Input {
	return core.Input{A: in.Analysed, B: in.Contenders, Lat: in.Latencies, Scenario: in.Scenario}
}

// ptacOptions maps the SDK knobs onto the ILP model options.
func (in Input) ptacOptions() core.PTACOptions {
	return core.PTACOptions{
		StallMode:         in.StallMode,
		DropContenderInfo: in.DropContenderInfo,
		SolverWorkers:     in.SolverWorkers,
	}
}
