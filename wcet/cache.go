package wcet

import (
	"container/list"
	"sync"
)

// estimateCache is a mutex-guarded LRU of model estimates keyed by
// canonical (model, input) hash — the Analyzer-level analogue of the
// serving layer's response cache, for callers (experiment grids, repeated
// integration runs) that re-evaluate identical cells.
type estimateCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses int64
}

type estimateEntry struct {
	key string
	est Estimate
}

func newEstimateCache(capacity int) *estimateCache {
	return &estimateCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

func (c *estimateCache) get(key string) (Estimate, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return Estimate{}, false
	}
	c.order.MoveToFront(el)
	c.hits++
	return el.Value.(*estimateEntry).est, true
}

func (c *estimateCache) put(key string, est Estimate) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*estimateEntry).est = est
		return
	}
	c.items[key] = c.order.PushFront(&estimateEntry{key: key, est: est})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*estimateEntry).key)
	}
}

// stats returns cumulative hit and miss counts.
func (c *estimateCache) stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
