package wcet_test

import (
	"context"
	"fmt"
	"log"

	"repro/wcet"
)

// Example walks the SDK's whole surface in one pre-integration analysis: a
// software provider holds isolation debug-counter readings for its task
// and for the announced co-runner, asks the facade for two bounds and a
// schedulability verdict, and reads the results by model name.
func Example() {
	an, err := wcet.NewAnalyzer(
		wcet.WithPlatform("tc27x"),
		wcet.WithScenario(wcet.Scenario1()),
		wcet.WithModels("ftc", "ilpPtac"),
	)
	if err != nil {
		log.Fatal(err)
	}

	res, err := an.Analyze(context.Background(), wcet.Request{
		Analysed:   wcet.Readings{CCNT: 157800, PS: 18000, DS: 27000, PM: 3000},
		Contenders: []wcet.Readings{{CCNT: 500000, PS: 50000, DS: 60000, PM: 8000}},
		RTA: &wcet.RTASpec{
			Model: "ilpPtac",
			Task:  wcet.RTATask{Name: "airbagCtl", Period: 2_000_000, Priority: 2},
			Others: []wcet.RTATask{
				{Name: "cruiseCtl", WCET: 50_000, Period: 500_000, Priority: 1},
			},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, e := range res.Estimates {
		fmt.Printf("%-7s wcet %d cycles (x%.2f of isolation)\n", e.Name, e.WCET(), e.Ratio())
	}
	fmt.Printf("schedulable with the %s bound: %t\n", res.RTA.Model, res.RTA.Schedulable)

	// Output:
	// ftc     wcet 321900 cycles (x2.04 of isolation)
	// ilpPtac wcet 235500 cycles (x1.49 of isolation)
	// schedulable with the ilpPtac bound: true
}
