package wcet

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/tabstore"
)

// fakeStore is a minimal TableStore for unit tests.
type fakeStore struct {
	tables map[string]LatencyTable
}

func (f *fakeStore) ResolveTable(ref string) (LatencyTable, string, error) {
	lt, ok := f.tables[ref]
	if !ok {
		return LatencyTable{}, "", fmt.Errorf("fake: unknown ref %q", ref)
	}
	return lt, "id-" + ref, nil
}

func slowTC27x() LatencyTable {
	lat := TC27x()
	for _, to := range AccessPaths() {
		l := lat[to.Target][to.Op]
		l.Max *= 2
		if l.Min > l.Max {
			l.Min = l.Max
		}
		lat[to.Target][to.Op] = l
	}
	return lat
}

func TestAnalyzerTableRefSelectsStoreTable(t *testing.T) {
	slow := slowTC27x()
	store := &fakeStore{tables: map[string]LatencyTable{
		"tc27x/default": TC27x(),
		"tc27x/slow":    slow,
	}}
	an := MustNewAnalyzer(WithTableStore(store), WithModels("ftc"))

	base, err := an.Analyze(context.Background(), testRequest())
	if err != nil {
		t.Fatal(err)
	}
	req := testRequest()
	req.TableRef = "tc27x/default"
	viaRef, err := an.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if viaRef.Estimates[0].WCET() != base.Estimates[0].WCET() {
		t.Fatalf("default-table ref %d != fixed table %d", viaRef.Estimates[0].WCET(), base.Estimates[0].WCET())
	}

	req.TableRef = "tc27x/slow"
	slowRes, err := an.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	// Doubled contender latencies must strictly worsen the fTC bound.
	if slowRes.Estimates[0].WCET() <= base.Estimates[0].WCET() {
		t.Fatalf("slow table bound %d not above base %d", slowRes.Estimates[0].WCET(), base.Estimates[0].WCET())
	}

	// And it must equal analysing under that table directly.
	direct := MustNewAnalyzer(WithLatencyTable(slow), WithModels("ftc"))
	want, err := direct.Analyze(context.Background(), testRequest())
	if err != nil {
		t.Fatal(err)
	}
	if slowRes.Estimates[0].WCET() != want.Estimates[0].WCET() {
		t.Fatalf("table-ref analysis %d != direct analysis %d", slowRes.Estimates[0].WCET(), want.Estimates[0].WCET())
	}
}

func TestAnalyzerTableRefErrors(t *testing.T) {
	an := MustNewAnalyzer(WithModels("ftc"))
	req := testRequest()
	req.TableRef = "tc27x/default"
	if _, err := an.Analyze(context.Background(), req); err == nil || !strings.Contains(err.Error(), "no table store") {
		t.Fatalf("TableRef without a store: %v", err)
	}

	withStore := MustNewAnalyzer(WithModels("ftc"), WithTableStore(&fakeStore{tables: map[string]LatencyTable{}}))
	if _, err := withStore.Analyze(context.Background(), req); err == nil || !strings.Contains(err.Error(), "unknown ref") {
		t.Fatalf("unknown ref: %v", err)
	}

	// A store handing back an invalid table must be caught before models run.
	bad := &fakeStore{tables: map[string]LatencyTable{"broken": {}}}
	req.TableRef = "broken"
	if _, err := MustNewAnalyzer(WithModels("ftc"), WithTableStore(bad)).Analyze(context.Background(), req); err == nil {
		t.Fatal("invalid store table must fail analysis")
	}

	if _, err := NewAnalyzer(WithTableStore(nil)); err == nil {
		t.Fatal("WithTableStore(nil) must fail construction")
	}
}

// TestAnalyzerCacheKeysTableContent drives one Analyzer with a cache over
// two table versions behind the same moving ref: retargeting the ref must
// not serve a stale estimate, because keys address table content.
func TestAnalyzerCacheKeysTableContent(t *testing.T) {
	store := &fakeStore{tables: map[string]LatencyTable{"serving": TC27x()}}
	an := MustNewAnalyzer(WithTableStore(store), WithModels("ftc"), WithCache(64))

	req := testRequest()
	req.TableRef = "serving"
	first, err := an.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	again, err := an.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if hits, _ := an.CacheStats(); hits != 1 {
		t.Fatalf("identical request must hit the estimate cache, hits=%d", hits)
	}
	if again.Estimates[0].WCET() != first.Estimates[0].WCET() {
		t.Fatal("cache hit changed the bound")
	}

	// Hot-swap the ref target; the same request must now miss and
	// produce the new table's bound.
	store.tables["serving"] = slowTC27x()
	swapped, err := an.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if swapped.Estimates[0].WCET() == first.Estimates[0].WCET() {
		t.Fatal("retargeted ref served a stale cached estimate")
	}
}

// TestTabstoreImplementsTableStore pins the adapter: the real versioned
// store must satisfy the SDK interface and round-trip a stored table.
func TestTabstoreImplementsTableStore(t *testing.T) {
	var _ TableStore = (*tabstore.Store)(nil)
	store, err := tabstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	id, err := store.Put(TC27x())
	if err != nil {
		t.Fatal(err)
	}
	if err := store.SetRef("tc27x/default", id); err != nil {
		t.Fatal(err)
	}
	an := MustNewAnalyzer(WithTableStore(store), WithModels("ftc"))
	req := testRequest()
	req.TableRef = "tc27x/default"
	res, err := an.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	base, err := MustNewAnalyzer(WithModels("ftc")).Analyze(context.Background(), testRequest())
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimates[0].WCET() != base.Estimates[0].WCET() {
		t.Fatalf("stored default table bound %d != builtin %d", res.Estimates[0].WCET(), base.Estimates[0].WCET())
	}
}
