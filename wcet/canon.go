package wcet

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// canonKey content-addresses one (model, input) evaluation for the
// Analyzer's estimate cache: two evaluations share a key iff the model is
// guaranteed to produce the same estimate for both. Unlike the serving
// layer's request keys, the platform characterisation is part of the key —
// experiment sweeps evaluate the same readings on perturbed tables.
//
// Contender order is canonicalized (all built-in models are
// permutation-invariant in the contender set); template and PTAC order
// follows the same argument.
func canonKey(model string, in Input) string {
	var b strings.Builder
	fmt.Fprintf(&b, "m=%s;sc=%s;mode=%s;drop=%t;lat=%s;a=%s",
		model, canonScenario(in.Scenario), in.StallMode, in.DropContenderInfo,
		canonLatencies(in.Latencies), canonReadings(in.Analysed))

	b.WriteString(";b=")
	b.WriteString(canonSorted(in.Contenders, canonReadings))
	b.WriteString(";tp=")
	b.WriteString(canonSorted(in.Templates, canonTemplate))
	if in.AnalysedPTAC != nil {
		b.WriteString(";pa=")
		b.WriteString(canonPTAC(in.AnalysedPTAC))
	}
	b.WriteString(";pb=")
	b.WriteString(canonSorted(in.ContenderPTACs, canonPTAC))

	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// canonSorted renders each element and joins them order-insensitively.
func canonSorted[T any](xs []T, render func(T) string) string {
	ss := make([]string, len(xs))
	for i, x := range xs {
		ss[i] = render(x)
	}
	sort.Strings(ss)
	return strings.Join(ss, "|")
}

// canonScenario renders the tailoring by content, not by label — custom
// scenarios may share a Name (or have none) yet differ in deployment or
// counter-interpretation flags, and those differences change the bounds.
func canonScenario(sc Scenario) string {
	return fmt.Sprintf("%q/%s/cce=%t/cdf=%t", sc.Name, sc.Deploy, sc.CodeCountExact, sc.CacheableDataFloor)
}

func canonReadings(r Readings) string {
	return fmt.Sprintf("c%d,ps%d,ds%d,pm%d,mc%d,md%d", r.CCNT, r.PS, r.DS, r.PM, r.DMC, r.DMD)
}

func canonLatencies(lat *LatencyTable) string {
	var b strings.Builder
	for _, to := range AccessPaths() {
		l, err := lat.Lookup(to.Target, to.Op)
		if err != nil {
			continue
		}
		fmt.Fprintf(&b, "%s:%d/%d/%d;", to, l.Max, l.Min, l.Stall)
	}
	return b.String()
}

func canonPTAC(p PTAC) string {
	parts := make([]string, 0, len(p))
	for to, n := range p {
		parts = append(parts, fmt.Sprintf("%s=%d", to, n))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func canonTemplate(tp Template) string {
	return fmt.Sprintf("%q:%s", tp.Name, canonPTAC(tp.MaxRequests))
}
