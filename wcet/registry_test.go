package wcet

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func toyModel(name string, delta int64) ContentionModel {
	return NewModel(name, func(_ context.Context, in Input) (Estimate, error) {
		return Estimate{Model: name, IsolationCycles: in.Analysed.CCNT, ContentionCycles: delta}, nil
	})
}

func TestRegistryResolveBuiltins(t *testing.T) {
	reg := NewDefaultRegistry()
	for spelling, canonical := range map[string]string{
		"ftc":               "ftc",
		"fTC":               "ftc",
		"ilpPtac":           "ilpPtac",
		"ILP-PTAC":          "ilpPtac",
		"ftcFsb":            "ftcFsb",
		"fTC-FSB":           "ftcFsb",
		"templatePtac":      "templatePtac",
		"ILP-PTAC-template": "templatePtac",
		"ideal":             "ideal",
		"":                  "ilpPtac", // historical wire default
	} {
		m, err := reg.Resolve(spelling)
		if err != nil {
			t.Fatalf("Resolve(%q): %v", spelling, err)
		}
		if m.Name() != canonical {
			t.Errorf("Resolve(%q) = %s, want %s", spelling, m.Name(), canonical)
		}
		canon, err := reg.Canonical(spelling)
		if err != nil || canon != canonical {
			t.Errorf("Canonical(%q) = %q, %v; want %q", spelling, canon, err, canonical)
		}
	}
}

func TestRegistryUnknownListsRegistered(t *testing.T) {
	reg := NewDefaultRegistry()
	_, err := reg.Resolve("nope")
	if err == nil {
		t.Fatal("Resolve of unknown model succeeded")
	}
	for _, want := range []string{`"nope"`, "ftc", "ilpPtac", "ftcFsb", "templatePtac", "ideal"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-model error %q does not mention %s", err, want)
		}
	}
}

func TestRegistryDuplicateRegistration(t *testing.T) {
	reg := NewDefaultRegistry()
	if err := reg.Register(toyModel("ftc", 1)); err == nil {
		t.Error("re-registering canonical name ftc succeeded")
	}
	if err := reg.Register(toyModel("fresh", 1), "fTC"); err == nil {
		t.Error("registering an alias colliding with existing alias fTC succeeded")
	}
	if err := reg.Register(toyModel("", 1)); err == nil {
		t.Error("registering an empty model name succeeded")
	}
	if err := reg.Register(toyModel("toy", 1), "t1", "t1"); err == nil {
		t.Error("registering duplicate aliases in one call succeeded")
	}
	// Names feed cache-key renderings and error lists: separator
	// characters must be rejected at registration.
	if err := reg.Register(toyModel("a,b", 1)); err == nil {
		t.Error("registering a name with a separator character succeeded")
	}
	if err := reg.Register(toyModel("toy2", 1), "to y"); err == nil {
		t.Error("registering an alias with a space succeeded")
	}
	// A failed registration must not leave partial spellings behind.
	if _, err := reg.Resolve("toy"); err == nil {
		t.Error("failed Register left the model resolvable")
	}

	defer func() {
		if recover() == nil {
			t.Error("MustRegister on a conflict did not panic")
		}
	}()
	reg.MustRegister(toyModel("ftc", 1))
}

func TestRegistryNamesAndAliases(t *testing.T) {
	reg := NewDefaultRegistry()
	names := reg.Names()
	want := []string{"ftc", "ftcFsb", "ideal", "ilpPtac", "templatePtac"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Errorf("Names() = %v, want %v", names, want)
	}
	aliases := reg.Aliases("ftc")
	if fmt.Sprint(aliases) != fmt.Sprint([]string{"FTC", "fTC"}) {
		t.Errorf("Aliases(ftc) = %v", aliases)
	}
}

// TestRegistryConcurrent hammers Register, Resolve, Names and Estimate
// from many goroutines; run under -race this is the registry's
// thread-safety proof.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewDefaultRegistry()
	in := Input{
		Analysed:   Readings{CCNT: 157800, PS: 18000, DS: 27000, PM: 3000},
		Contenders: []Readings{{CCNT: 500000, PS: 50000, DS: 60000, PM: 8000}},
		Latencies:  ptr(TC27x()),
		Scenario:   Scenario1(),
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				name := fmt.Sprintf("toy-%d-%d", g, i)
				if err := reg.Register(toyModel(name, int64(i)), name+"-alias"); err != nil {
					t.Errorf("Register(%s): %v", name, err)
					return
				}
				m, err := reg.Resolve(name + "-alias")
				if err != nil {
					t.Errorf("Resolve(%s-alias): %v", name, err)
					return
				}
				if _, err := m.Estimate(context.Background(), in); err != nil {
					t.Errorf("Estimate(%s): %v", name, err)
					return
				}
				ftc, err := reg.Resolve("ftc")
				if err != nil {
					t.Errorf("Resolve(ftc): %v", err)
					return
				}
				if _, err := ftc.Estimate(context.Background(), in); err != nil {
					t.Errorf("ftc.Estimate: %v", err)
					return
				}
				reg.Names()
			}
		}(g)
	}
	wg.Wait()
	if got := len(reg.Names()); got != 5+8*50 {
		t.Errorf("after concurrent registration: %d canonical names, want %d", got, 5+8*50)
	}
}

func ptr[T any](v T) *T { return &v }
